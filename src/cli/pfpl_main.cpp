// pfpl — command-line front end for the PFPL compressor.
//
// Single-field streams:
//   pfpl c <in.raw> <out.pfpl> --dtype f32|f64 --eb abs|rel|noa --eps 1e-3
//        [--exec serial|omp|gpusim]
//   pfpl d <in.pfpl> <out.raw> [--exec serial|omp|gpusim]
//   pfpl info <in.pfpl>
//   pfpl verify <original.raw> <in.pfpl>     # re-check the error bound
//
// Multi-field PFPA archives (the svc batch-compression service):
//   pfpl pack <out.pfpa> <in1.raw> [in2.raw ...] --dtype f32|f64
//        --eb abs|rel|noa --eps 1e-3 [--threads N] [--exec serial|omp|gpusim]
//   pfpl unpack <in.pfpa> <outdir> [--entry NAME]
//   pfpl list <in.pfpa>
//   pfpl stats <in.pfpa|in.pfpl> [--json]      # machine-readable stats
//
// Continuous error-bound audit (src/obs/audit.hpp):
//   pfpl audit [--full] [--json] [--suite NAME] [--dtype f32|f64]
//        [--eb abs|rel|noa] [--eps 1e-3] [--exec serial|omp|gpusim]
//   sweeps the synthetic suites through compress -> decompress and re-checks
//   every reconstructed value; exits 3 if any bound violation is found.
//
// PFPN/1 network service (src/net):
//   pfpl serve [--port N] [--bind ADDR] [--threads N] [--max-inflight BYTES]
//        [--exec serial|omp|gpusim]
//   runs the pfpld compression server until SIGINT/SIGTERM or a SHUTDOWN
//   frame, then drains gracefully.
//   pfpl remote compress <in.raw> <out.pfpl> --host H:P --dtype ... --eb ... --eps ...
//   pfpl remote decompress <in.pfpl> <out.raw> --host H:P
//   pfpl remote stats|ping|shutdown --host H:P [--timeout-ms N]
//   pfpl remote metrics --host H:P [--prom]   # registry dump (JSON or Prometheus)
//   pfpl top --host H:P [--interval-ms N] [--count N]
//   polls the METRICS op and renders rate-converted req/s, MB/s, latency
//   quantiles, store hit ratio, and pool queue depth — one line per tick.
//
// Observability (valid on every verb, parsed before dispatch):
//   --trace FILE    record spans and write a Chrome trace_event JSON
//                   (chrome://tracing / Perfetto loadable)
//   --metrics       print the metrics registry to stderr on exit
//   --report FILE   write the obs RunReport JSON artifact
//
// Exit codes: 0 ok, 1 error (bad/corrupt input, I/O failure), 2 usage,
// 3 verify/audit found a bound violation.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cli/top_window.hpp"
#include "cluster/client.hpp"
#include "cluster/shard_map.hpp"
#include "core/pfpl.hpp"
#include "data/evolving.hpp"
#include "data/synthetic.hpp"
#include "ingest/pipeline.hpp"
#include "io/raw_file.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "metrics/error_stats.hpp"
#include "obs/audit.hpp"
#include "obs/event_log.hpp"
#include "obs/json.hpp"
#include "obs/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "store/store.hpp"
#include "svc/archive.hpp"
#include "svc/batch.hpp"
#include "temporal/pfpv.hpp"
#include "temporal/temporal.hpp"

using namespace repro;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pfpl c <in.raw> <out.pfpl> --dtype f32|f64 --eb abs|rel|noa --eps <e>\n"
               "       [--exec serial|omp|gpusim]\n"
               "  pfpl d <in.pfpl> <out.raw> [--exec serial|omp|gpusim]\n"
               "  pfpl info <in.pfpl>\n"
               "  pfpl verify <original.raw> <in.pfpl>\n"
               "  pfpl pack <out.pfpa> <in1.raw> [in2.raw ...] --dtype f32|f64\n"
               "       --eb abs|rel|noa --eps <e> [--threads N] [--exec serial|omp|gpusim]\n"
               "       [--audit]   # re-verify every packed entry, exit 3 on violation\n"
               "       [--store DIR]   # reuse/fill a PFPS chunk store\n"
               "       [--progress]    # per-file progress + stage timing on stderr\n"
               "       [--serial]      # synchronous batch path (no ingest pipeline)\n"
               "  pfpl unpack <in.pfpa> <outdir> [--entry NAME]\n"
               "  pfpl list <in.pfpa>\n"
               "  pfpl stats <in.pfpa|in.pfpl> [--json]\n"
               "  pfpl audit [--full] [--json] [--suite NAME] [--dtype f32|f64]\n"
               "       [--eb abs|rel|noa] [--eps <e>] [--exec serial|omp|gpusim]\n"
               "  pfpl serve [--port N] [--bind ADDR] [--threads N]\n"
               "       [--max-inflight BYTES] [--exec serial|omp|gpusim]\n"
               "       [--store DIR] [--cache-mb N]   # answer repeats from the chunk store\n"
               "       [--metrics-port N]  # plain-HTTP GET /metrics listener (0 = ephemeral)\n"
               "       [--slow-ms N] [--slow-log FILE]  # capture + log slow requests\n"
               "       [--flight-ms N] [--flight-depth N]  # metric-snapshot flight recorder\n"
               "       [--stall-ms N]     # watchdog: flag requests/stages stuck N ms\n"
               "       [--crash-dir DIR]  # fatal-signal crash reports + stall dumps\n"
               "       [--shard-map FILE] [--node-id ID]  # join a cluster (PFSM map)\n"
               "       [--max-conns N]    # cap concurrent connections (0 = unlimited)\n"
               "       [--poll]           # force the poll(2) event backend (no epoll)\n"
               "       [--max-sessions N] [--session-idle-ms N]  # temporal stream\n"
               "                          # sessions: cap + idle eviction (0 = off)\n"
               "  pfpl cluster init <out.pfsm> --nodes [id=]H:P,[id=]H:P,...\n"
               "       [--cluster-id NAME] [--replicas R] [--vnodes V]\n"
               "  pfpl cluster status --shard-map FILE [--json] [--timeout-ms N]\n"
               "  pfpl cluster put <in.raw> <out.pfpl> --shard-map FILE --dtype f32|f64\n"
               "       --eb abs|rel|noa --eps <e>\n"
               "  pfpl cluster get <in.pfpl> <out.raw> --shard-map FILE\n"
               "  pfpl remote compress <in.raw> <out.pfpl> --host H:P --dtype f32|f64\n"
               "       --eb abs|rel|noa --eps <e>\n"
               "  pfpl remote decompress <in.pfpl> <out.raw> --host H:P\n"
               "  pfpl remote stats|ping|shutdown --host H:P [--timeout-ms N]\n"
               "  pfpl remote metrics --host H:P [--prom | --history]\n"
               "  pfpl top --host H:P [--interval-ms N] [--count N]\n"
               "  pfpl top --cluster --shard-map FILE [--interval-ms N] [--count N]\n"
               "       one row per node each tick (req/s, p99, hit%%, conns)\n"
               "  pfpl profile [--json] [--suite NAME] [--dtype f32|f64] [--full]\n"
               "       [--eb abs|rel|noa] [--eps <e>] [--exec serial|omp|gpusim]\n"
               "       per-kernel throughput attribution over the synthetic suites\n"
               "  pfpl store put <in1.raw> [in2.raw ...] --store DIR --dtype f32|f64\n"
               "       --eb abs|rel|noa --eps <e> [--exec serial|omp|gpusim]\n"
               "       [--threads N] [--audit] [--progress]  # multi-file runs the\n"
               "       staged ingest pipeline (read/dedup/encode/append overlapped)\n"
               "  pfpl store get <key> <out.pfpl> --store DIR\n"
               "  pfpl store ls --store DIR\n"
               "  pfpl store compact --store DIR\n"
               "  pfpl store verify --store DIR    # exit 1 on corrupt frames\n"
               "  pfpl stream pack <out.pfpv> <f0.raw> [f1.raw ...] --dims ZxYxX\n"
               "       --dtype f32|f64 --eb abs|rel|noa --eps <e>\n"
               "       [--keyframe-interval N] [--exec ...] [--audit] [--dump-recon DIR]\n"
               "  pfpl stream pack <out.pfpv> --suite advect|diffuse|regime\n"
               "       --eb abs|rel|noa --eps <e> [--frames N] [--values N] [--seed S]\n"
               "       [--keyframe-interval N] [--audit] [--dump-raw DIR] [--dump-recon DIR]\n"
               "       [--host H:P]  # push the session to pfpld (STREAM_OPEN/FRAME);\n"
               "                     # on server loss the client reopens and resumes\n"
               "                     # at a keyframe\n"
               "  pfpl stream unpack <in.pfpv> <outdir>   # frame-NNNNNN.raw per frame\n"
               "  pfpl stream info <in.pfpv> [--json]\n"
               "observability (any verb): --trace FILE  --metrics  --report FILE\n");
  std::exit(2);
}

/// Observability flags, stripped from argv before verb dispatch so every
/// command accepts them uniformly.
struct ObsFlags {
  std::string trace_path;
  std::string report_path;
  bool metrics = false;
  bool any() const { return metrics || !trace_path.empty() || !report_path.empty(); }
};

ObsFlags strip_obs_flags(int& argc, char** argv) {
  ObsFlags fl;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--trace" || a == "--report") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        usage();
      }
      (a == "--trace" ? fl.trace_path : fl.report_path) = argv[++i];
    } else if (a == "--metrics") {
      fl.metrics = true;
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  if (fl.any()) obs::set_enabled(true);
  return fl;
}

/// Emit the requested observability artifacts (called on every exit path
/// that ran a command, including failures — a trace of a failed run is
/// exactly what you want on the operator's desk).
void flush_obs(const ObsFlags& fl) {
  if (!fl.any()) return;
  try {
    if (fl.metrics)
      std::fprintf(stderr, "%s", obs::MetricsRegistry::global().text().c_str());
    if (!fl.report_path.empty()) {
      obs::RunReport::global().set_meta("tool", "pfpl");
      obs::RunReport::global().write(fl.report_path);
    }
    if (!fl.trace_path.empty())
      obs::TraceRecorder::global().write_chrome_json(fl.trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pfpl: obs: %s\n", e.what());
  }
}

pfpl::Executor parse_exec(const std::string& s) {
  if (s == "serial") return pfpl::Executor::Serial;
  if (s == "omp") return pfpl::Executor::OpenMP;
  if (s == "gpusim") return pfpl::Executor::GpuSim;
  usage();
}

struct Flags {
  DType dtype = DType::F32;
  pfpl::Params params;
  unsigned threads = 0;
  std::string entry;
  bool json = false;   ///< `pfpl stats|audit --json`: machine-readable output
  bool audit = false;  ///< `pfpl pack --audit`: re-verify every packed job
  bool progress = false;  ///< `pfpl pack --progress`: per-file lines on stderr
  bool serial = false;    ///< `pfpl pack --serial`: bypass the ingest pipeline
  bool full = false;   ///< `pfpl audit --full`: paper-scale protocol
  std::string suite;   ///< `pfpl audit --suite NAME`: restrict to one suite
  // `pfpl audit` narrows its sweep only along axes the user actually set,
  // so remember which of the shared flags were explicit.
  bool dtype_set = false, eb_set = false, eps_set = false;
  // Network verbs (`pfpl serve` / `pfpl remote`).
  std::string host;                 ///< `pfpl remote --host H:P`
  std::string bind = "127.0.0.1";   ///< `pfpl serve --bind ADDR`
  unsigned port = 0;                ///< `pfpl serve --port N` (0 = ephemeral)
  std::size_t max_inflight = 0;     ///< `pfpl serve --max-inflight BYTES` (0 = default)
  int timeout_ms = 0;               ///< `pfpl remote --timeout-ms N` (0 = default)
  // PFPS chunk store (`pfpl serve|pack|store`).
  std::string store_dir;            ///< `--store DIR` (empty = no persistence)
  unsigned cache_mb = 0;            ///< `--cache-mb N` (0 = default 64)
  // Live introspection (`pfpl serve` / `pfpl remote metrics` / `pfpl top`).
  int slow_ms = 0;                  ///< `pfpl serve --slow-ms N` (0 = off)
  std::string slow_log;             ///< `pfpl serve --slow-log FILE` (empty = stderr)
  int metrics_port = -1;            ///< `pfpl serve --metrics-port N` (-1 = off)
  // Flight recorder / crash diagnostics (`pfpl serve`).
  int flight_ms = 0;                ///< `--flight-ms N` snapshot cadence (0 = off)
  int flight_depth = 32;            ///< `--flight-depth N` ring capacity
  u64 stall_ms = 0;                 ///< `--stall-ms N` watchdog threshold (0 = off)
  std::string crash_dir;            ///< `--crash-dir DIR` (empty = no crash reports)
  bool prom = false;                ///< `pfpl remote metrics --prom`
  bool history = false;             ///< `pfpl remote metrics --history`
  int interval_ms = 1000;           ///< `pfpl top --interval-ms N`
  int count = 0;                    ///< `pfpl top --count N` (0 = until ^C)
  // Cluster verbs (`pfpl serve --shard-map` / `pfpl cluster` / `pfpl top --cluster`).
  std::string shard_map;            ///< `--shard-map FILE` (PFSM, empty = standalone)
  std::string node_id;              ///< `pfpl serve --node-id ID` (empty = by port)
  std::string cluster_id = "pfpl";  ///< `pfpl cluster init --cluster-id NAME`
  std::string nodes;                ///< `pfpl cluster init --nodes [id=]H:P,...`
  unsigned replicas = 0;            ///< `pfpl cluster init --replicas R` (0 = default)
  unsigned vnodes = 0;              ///< `pfpl cluster init --vnodes V` (0 = default)
  std::size_t max_conns = 0;        ///< `pfpl serve --max-conns N` (0 = unlimited)
  bool poll = false;                ///< `pfpl serve --poll`: poll(2), no epoll
  bool cluster = false;             ///< `pfpl top --cluster`
  // Temporal stream verbs (`pfpl stream` / `pfpl serve`).
  std::string dims;                 ///< `pfpl stream pack --dims ZxYxX`
  std::size_t frames = 0;           ///< `--frames N` (0 = suite default)
  std::size_t values = 0;           ///< `--values N` per frame (0 = default)
  unsigned keyframe_interval = 16;  ///< `--keyframe-interval N`
  u64 seed = 0;                     ///< `--seed S` (0 = suite default)
  std::string dump_raw;             ///< `--dump-raw DIR`: original frames
  std::string dump_recon;           ///< `--dump-recon DIR`: decoded frames
  std::size_t max_sessions = 64;    ///< `pfpl serve --max-sessions N`
  int session_idle_ms = 60000;      ///< `pfpl serve --session-idle-ms N`
};

/// Parse `--flag value` pairs from argv[first..); non-flag arguments are
/// appended to `positional`.
Flags parse_flags(int argc, char** argv, int first, std::vector<std::string>* positional) {
  Flags fl;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        usage();
      }
      return argv[++i];
    };
    if (a == "--dtype") {
      std::string v = need("--dtype");
      fl.dtype_set = true;
      if (v == "f32") {
        fl.dtype = DType::F32;
      } else if (v == "f64") {
        fl.dtype = DType::F64;
      } else {
        std::fprintf(stderr, "unknown --dtype '%s' (expected f32|f64)\n", v.c_str());
        usage();
      }
    } else if (a == "--eb") {
      std::string v = need("--eb");
      fl.eb_set = true;
      if (v == "abs") {
        fl.params.eb = EbType::ABS;
      } else if (v == "rel") {
        fl.params.eb = EbType::REL;
      } else if (v == "noa") {
        fl.params.eb = EbType::NOA;
      } else {
        std::fprintf(stderr, "unknown --eb '%s' (expected abs|rel|noa)\n", v.c_str());
        usage();
      }
    } else if (a == "--eps") {
      std::string v = need("--eps");
      fl.eps_set = true;
      try {
        fl.params.eps = std::stod(v);
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --eps: '" + v + "'");
      }
    } else if (a == "--exec") {
      fl.params.exec = parse_exec(need("--exec"));
    } else if (a == "--threads") {
      std::string v = need("--threads");
      try {
        fl.threads = static_cast<unsigned>(std::stoul(v));
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --threads: '" + v + "'");
      }
    } else if (a == "--entry") {
      fl.entry = need("--entry");
    } else if (a == "--host") {
      fl.host = need("--host");
    } else if (a == "--bind") {
      fl.bind = need("--bind");
    } else if (a == "--port") {
      std::string v = need("--port");
      try {
        unsigned long p = std::stoul(v);
        if (p > 65535) throw CompressionError("");
        fl.port = static_cast<unsigned>(p);
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --port: '" + v + "'");
      }
    } else if (a == "--max-inflight") {
      std::string v = need("--max-inflight");
      try {
        fl.max_inflight = static_cast<std::size_t>(std::stoull(v));
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --max-inflight: '" + v + "'");
      }
    } else if (a == "--store") {
      fl.store_dir = need("--store");
    } else if (a == "--cache-mb") {
      std::string v = need("--cache-mb");
      try {
        fl.cache_mb = static_cast<unsigned>(std::stoul(v));
        if (fl.cache_mb == 0) throw CompressionError("");
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --cache-mb: '" + v +
                               "' (expected a positive MiB count)");
      }
    } else if (a == "--timeout-ms") {
      std::string v = need("--timeout-ms");
      try {
        fl.timeout_ms = static_cast<int>(std::stol(v));
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --timeout-ms: '" + v + "'");
      }
    } else if (a == "--slow-ms") {
      std::string v = need("--slow-ms");
      try {
        fl.slow_ms = static_cast<int>(std::stol(v));
        if (fl.slow_ms < 0) throw CompressionError("");
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --slow-ms: '" + v + "'");
      }
    } else if (a == "--slow-log") {
      fl.slow_log = need("--slow-log");
    } else if (a == "--flight-ms") {
      std::string v = need("--flight-ms");
      try {
        fl.flight_ms = static_cast<int>(std::stol(v));
        if (fl.flight_ms < 0) throw CompressionError("");
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --flight-ms: '" + v + "'");
      }
    } else if (a == "--flight-depth") {
      std::string v = need("--flight-depth");
      try {
        fl.flight_depth = static_cast<int>(std::stol(v));
        if (fl.flight_depth <= 0) throw CompressionError("");
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --flight-depth: '" + v +
                               "' (expected a positive snapshot count)");
      }
    } else if (a == "--stall-ms") {
      std::string v = need("--stall-ms");
      try {
        fl.stall_ms = std::stoull(v);
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --stall-ms: '" + v + "'");
      }
    } else if (a == "--crash-dir") {
      fl.crash_dir = need("--crash-dir");
    } else if (a == "--metrics-port") {
      std::string v = need("--metrics-port");
      try {
        unsigned long p = std::stoul(v);
        if (p > 65535) throw CompressionError("");
        fl.metrics_port = static_cast<int>(p);
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --metrics-port: '" + v + "'");
      }
    } else if (a == "--interval-ms") {
      std::string v = need("--interval-ms");
      try {
        fl.interval_ms = static_cast<int>(std::stol(v));
        if (fl.interval_ms <= 0) throw CompressionError("");
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --interval-ms: '" + v +
                               "' (expected a positive millisecond count)");
      }
    } else if (a == "--count") {
      std::string v = need("--count");
      try {
        fl.count = static_cast<int>(std::stol(v));
        if (fl.count < 0) throw CompressionError("");
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --count: '" + v + "'");
      }
    } else if (a == "--shard-map") {
      fl.shard_map = need("--shard-map");
    } else if (a == "--node-id") {
      fl.node_id = need("--node-id");
    } else if (a == "--cluster-id") {
      fl.cluster_id = need("--cluster-id");
    } else if (a == "--nodes") {
      fl.nodes = need("--nodes");
    } else if (a == "--replicas") {
      std::string v = need("--replicas");
      try {
        unsigned long r = std::stoul(v);
        if (r == 0 || r > 65535) throw CompressionError("");
        fl.replicas = static_cast<unsigned>(r);
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --replicas: '" + v +
                               "' (expected 1..65535)");
      }
    } else if (a == "--vnodes") {
      std::string v = need("--vnodes");
      try {
        fl.vnodes = static_cast<unsigned>(std::stoul(v));
        if (fl.vnodes == 0) throw CompressionError("");
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --vnodes: '" + v +
                               "' (expected a positive vnode count)");
      }
    } else if (a == "--max-conns") {
      std::string v = need("--max-conns");
      try {
        fl.max_conns = static_cast<std::size_t>(std::stoull(v));
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --max-conns: '" + v + "'");
      }
    } else if (a == "--poll") {
      fl.poll = true;
    } else if (a == "--cluster") {
      fl.cluster = true;
    } else if (a == "--dims") {
      fl.dims = need("--dims");
    } else if (a == "--frames") {
      std::string v = need("--frames");
      try {
        fl.frames = static_cast<std::size_t>(std::stoull(v));
        if (fl.frames == 0) throw CompressionError("");
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --frames: '" + v +
                               "' (expected a positive frame count)");
      }
    } else if (a == "--values") {
      std::string v = need("--values");
      try {
        fl.values = static_cast<std::size_t>(std::stoull(v));
        if (fl.values == 0) throw CompressionError("");
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --values: '" + v +
                               "' (expected a positive value count)");
      }
    } else if (a == "--keyframe-interval") {
      std::string v = need("--keyframe-interval");
      try {
        fl.keyframe_interval = static_cast<unsigned>(std::stoul(v));
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --keyframe-interval: '" + v + "'");
      }
    } else if (a == "--seed") {
      std::string v = need("--seed");
      try {
        fl.seed = std::stoull(v);
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --seed: '" + v + "'");
      }
    } else if (a == "--dump-raw") {
      fl.dump_raw = need("--dump-raw");
    } else if (a == "--dump-recon") {
      fl.dump_recon = need("--dump-recon");
    } else if (a == "--max-sessions") {
      std::string v = need("--max-sessions");
      try {
        fl.max_sessions = static_cast<std::size_t>(std::stoull(v));
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --max-sessions: '" + v + "'");
      }
    } else if (a == "--session-idle-ms") {
      std::string v = need("--session-idle-ms");
      try {
        fl.session_idle_ms = static_cast<int>(std::stol(v));
        if (fl.session_idle_ms < 0) throw CompressionError("");
      } catch (const std::exception&) {
        throw CompressionError("invalid value for --session-idle-ms: '" + v + "'");
      }
    } else if (a == "--prom") {
      fl.prom = true;
    } else if (a == "--history") {
      fl.history = true;
    } else if (a == "--suite") {
      fl.suite = need("--suite");
    } else if (a == "--json") {
      fl.json = true;
    } else if (a == "--audit") {
      fl.audit = true;
    } else if (a == "--progress") {
      fl.progress = true;
    } else if (a == "--serial") {
      fl.serial = true;
    } else if (a == "--full") {
      fl.full = true;
    } else if (!a.empty() && a[0] == '-') {
      usage();
    } else if (positional) {
      positional->push_back(a);
    } else {
      usage();
    }
  }
  return fl;
}

Field make_field(const std::vector<u8>& raw, DType dtype) {
  if (dtype == DType::F32)
    return Field(reinterpret_cast<const float*>(raw.data()), raw.size() / 4);
  return Field(reinterpret_cast<const double*>(raw.data()), raw.size() / 8);
}

int cmd_pack(const std::vector<std::string>& positional, const Flags& fl) {
  if (positional.size() < 2) usage();
  const std::string& out_path = positional[0];
  // Entries are named after input basenames; reject collisions up front,
  // before any compression work, so a clash cannot leave a partial archive
  // on disk (ArchiveWriter::add would throw mid-write otherwise).
  std::vector<std::string> names;
  names.reserve(positional.size() - 1);
  for (std::size_t i = 1; i < positional.size(); ++i) {
    std::string name = std::filesystem::path(positional[i]).filename().string();
    for (std::size_t j = 0; j < names.size(); ++j)
      if (names[j] == name)
        throw CompressionError("pack: inputs '" + positional[j + 1] + "' and '" +
                               positional[i] + "' both map to entry name '" + name +
                               "'; basenames must be unique");
    names.push_back(std::move(name));
  }
  std::unique_ptr<store::ChunkStore> chunk_store;
  if (!fl.store_dir.empty()) {
    store::ChunkStore::Options so;
    so.dir = fl.store_dir;
    if (fl.cache_mb) so.cache.byte_budget = static_cast<std::size_t>(fl.cache_mb) << 20;
    chunk_store = std::make_unique<store::ChunkStore>(so);
  }

  std::vector<ingest::Result> results;
  std::string run_summary;
  if (fl.serial) {
    // Reference path: read every input up front, one synchronous
    // BatchCompressor run. Byte-identical to the pipeline by construction —
    // the CI ingest-smoke job cmp's the two archives.
    std::vector<std::vector<u8>> raws;
    std::vector<svc::Job> jobs;
    raws.reserve(positional.size() - 1);
    for (std::size_t i = 1; i < positional.size(); ++i) {
      raws.push_back(io::read_file(positional[i]));
      jobs.push_back({names[i - 1], make_field(raws.back(), fl.dtype), fl.params});
    }
    svc::BatchCompressor batch(
        {.threads = fl.threads, .audit = fl.audit, .store = chunk_store.get()});
    std::vector<svc::JobResult> jr = batch.run(jobs);
    results.reserve(jr.size());
    for (svc::JobResult& r : jr) {
      ingest::Result out;
      out.name = std::move(r.name);
      out.stream = std::move(r.stream);
      out.header = r.header;
      out.raw_bytes = r.raw_bytes;
      out.failed = r.failed;
      out.error = std::move(r.error);
      out.reused = r.reused;
      out.audited = r.audited;
      out.audit_violations = r.audit_violations;
      results.push_back(std::move(out));
    }
    run_summary = batch.stats().summary();
    if (obs::enabled())
      obs::RunReport::global().add_section("svc", batch.stats().json());
  } else {
    // Default path: the staged ingest pipeline overlaps reading, dedup
    // probing, encoding, and the batched segment appends.
    ingest::IngestPipeline::Options po;
    po.dtype = fl.dtype;
    po.params = fl.params;
    po.threads = fl.threads;
    po.audit = fl.audit;
    po.store = chunk_store.get();
    if (fl.progress)
      po.progress = [](const ingest::Result& r, std::size_t i, std::size_t n) {
        if (r.failed || r.cancelled) {
          std::fprintf(stderr, "pfpl: [%zu/%zu] %s: %s\n", i + 1, n, r.name.c_str(),
                       r.error.c_str());
        } else {
          std::fprintf(stderr, "pfpl: [%zu/%zu] %s: %llu -> %zu bytes (ratio %.2f)%s\n",
                       i + 1, n, r.name.c_str(),
                       static_cast<unsigned long long>(r.raw_bytes), r.stream.size(),
                       r.stream.empty() ? 0.0
                                        : static_cast<double>(r.raw_bytes) /
                                              static_cast<double>(r.stream.size()),
                       r.reused ? " [reused]" : "");
        }
      };
    std::vector<ingest::Item> items;
    items.reserve(positional.size() - 1);
    for (std::size_t i = 1; i < positional.size(); ++i)
      items.push_back(ingest::Item{names[i - 1], positional[i], {}});
    ingest::IngestPipeline pipe(po);
    results = pipe.run(std::move(items));
    run_summary = pipe.stats().summary();
    if (fl.progress) {
      const ingest::IngestStats& st = pipe.stats();
      std::fprintf(stderr,
                   "pfpl: stages read/hash/encode/append = %.1f/%.1f/%.1f/%.1f ms, "
                   "wall %.1f ms, %llu append batch(es), peak queue %.1f MB\n",
                   st.read_ms, st.hash_ms, st.encode_ms, st.append_ms, st.wall_ms,
                   static_cast<unsigned long long>(st.append_batches),
                   st.peak_queue_bytes / 1e6);
    }
    if (obs::enabled())
      obs::RunReport::global().add_section("ingest", pipe.stats().json());
  }
  if (chunk_store) {
    chunk_store->sync();
    if (obs::enabled())
      obs::RunReport::global().add_section("store", chunk_store->stats_json());
  }

  int failed = 0;
  u64 audit_violations = 0;
  svc::ArchiveWriter writer(out_path);
  for (const ingest::Result& r : results) {
    if (r.failed || r.cancelled) {
      std::fprintf(stderr, "pfpl: %s: %s\n", r.name.c_str(), r.error.c_str());
      ++failed;
      continue;
    }
    if (r.audited && r.audit_violations) {
      std::fprintf(stderr, "pfpl: %s: audit found %llu bound violation(s)\n",
                   r.name.c_str(), static_cast<unsigned long long>(r.audit_violations));
      audit_violations += r.audit_violations;
    }
    writer.add(r.name, r.header, r.stream, r.raw_bytes);
  }
  writer.finish();
  std::printf("%s: %zu entries\n%s\n", out_path.c_str(), results.size() - failed,
              run_summary.c_str());
  if (failed) return 1;
  return audit_violations ? 3 : 0;
}

/// `pfpl audit` — run the continuous error-bound audit sweep. The shared
/// --dtype/--eb/--eps flags narrow the sweep along that axis only when given;
/// the default covers every suite x {f32,f64} x {abs,rel,noa} x two bounds.
int cmd_audit(const std::vector<std::string>& positional, const Flags& fl) {
  if (!positional.empty()) usage();
  obs::AuditConfig cfg;
  if (fl.full) cfg.scale_full();
  if (fl.dtype_set) cfg.dtypes = {fl.dtype};
  if (fl.eb_set) cfg.ebs = {fl.params.eb};
  if (fl.eps_set) cfg.bounds = {fl.params.eps};
  if (!fl.suite.empty()) cfg.suites = {fl.suite};
  cfg.exec = fl.params.exec;
  obs::ErrorBoundAuditor auditor(cfg);
  obs::AuditResult res = auditor.run();
  if (obs::enabled()) obs::RunReport::global().add_section("audit", res.json());
  if (fl.json)
    std::printf("%s\n", res.json().c_str());
  else
    std::printf("%s", res.text().c_str());
  return res.ok() ? 0 : 3;
}

int cmd_unpack(const std::vector<std::string>& positional, const Flags& fl) {
  if (positional.size() != 2) usage();
  svc::ArchiveReader reader(positional[0]);
  std::filesystem::create_directories(positional[1]);
  std::size_t n = 0;
  for (const svc::ArchiveEntry& e : reader.entries()) {
    if (!fl.entry.empty() && e.name != fl.entry) continue;
    Bytes stream = reader.read_entry(e);
    std::vector<u8> raw = pfpl::decompress(stream, fl.params.exec);
    std::string out = (std::filesystem::path(positional[1]) / e.name).string();
    io::write_file(out, raw.data(), raw.size());
    std::printf("%s: %zu -> %zu bytes\n", e.name.c_str(), stream.size(), raw.size());
    ++n;
  }
  if (!fl.entry.empty() && n == 0)
    throw CompressionError("PFPA: no entry named '" + fl.entry + "'");
  return 0;
}

int cmd_list(const std::vector<std::string>& positional) {
  if (positional.size() != 1) usage();
  svc::ArchiveReader reader(positional[0]);
  std::printf("%-24s %-5s %-4s %-10s %12s %12s %8s\n", "name", "dtype", "eb", "eps",
              "raw", "compressed", "ratio");
  for (const svc::ArchiveEntry& e : reader.entries()) {
    std::printf("%-24s %-5s %-4s %-10g %12llu %12llu %8.3f\n", e.name.c_str(),
                to_string(e.dtype), to_string(e.eb_type), e.eps,
                static_cast<unsigned long long>(e.raw_size),
                static_cast<unsigned long long>(e.size),
                e.size ? static_cast<double>(e.raw_size) / static_cast<double>(e.size) : 0.0);
  }
  std::printf("%zu entries\n", reader.entries().size());
  return 0;
}

/// First 4 bytes of `path` as a little-endian u32 (0 when shorter).
u32 peek_magic(const std::string& path) {
  std::vector<u8> head = io::read_file(path);
  if (head.size() < 4) return 0;
  return static_cast<u32>(head[0]) | static_cast<u32>(head[1]) << 8 |
         static_cast<u32>(head[2]) << 16 | static_cast<u32>(head[3]) << 24;
}

/// Exit 2 with a clear message for a container whose magic `verb` does not
/// handle — never fall through to misparsing it as something else.
[[noreturn]] void reject_magic(const char* verb, const std::string& path, u32 magic) {
  const u8 b[4] = {static_cast<u8>(magic), static_cast<u8>(magic >> 8),
                   static_cast<u8>(magic >> 16), static_cast<u8>(magic >> 24)};
  auto printable = [](u8 c) { return c >= 0x20 && c < 0x7F; };
  char tag[5] = {0};
  bool text = true;
  for (int i = 0; i < 4; ++i) {
    tag[i] = static_cast<char>(b[i]);
    text = text && printable(b[i]);
  }
  std::fprintf(stderr,
               "pfpl %s: %s: unhandled container magic 0x%08X%s%s%s "
               "(handled here: %s)\n",
               verb, path.c_str(), magic, text ? " ('" : "", text ? tag : "",
               text ? "')" : "",
               std::string(verb) == "stats" ? "PFPA, PFPL, PFPV" : "PFPV");
  std::exit(2);
}

/// `pfpl stats` on a PFPV frame stream (also the body of `pfpl stream info`).
int pfpv_stats(const std::string& path, bool json) {
  temporal::StreamReader reader(path);
  const temporal::SessionConfig& cfg = reader.config();
  u64 iframes = 0, pframes = 0, payload_bytes = 0, predicted_chunks = 0,
      intra_chunks = 0;
  for (std::size_t i = 0; i < reader.frame_count(); ++i) {
    const temporal::EncodedFrame f = reader.frame(i);
    (f.type == temporal::FrameType::Intra ? iframes : pframes) += 1;
    payload_bytes += f.byte_size();
    predicted_chunks += f.predicted_chunks;
    intra_chunks += f.intra_chunks;
  }
  const double raw_bytes =
      static_cast<double>(reader.frame_count()) * static_cast<double>(cfg.frame_bytes());
  const std::uintmax_t file_bytes = std::filesystem::file_size(path);
  const double ratio = file_bytes ? raw_bytes / static_cast<double>(file_bytes) : 0.0;
  if (json) {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("file", path);
    w.kv("kind", "pfpv");
    w.kv("dtype", to_string(cfg.dtype));
    w.kv("eb", to_string(cfg.eb));
    w.kv("eps", cfg.eps);
    w.key("dims").begin_array();
    for (u32 d : cfg.dims) w.value(static_cast<unsigned long long>(d));
    w.end_array();
    w.kv("keyframe_interval", static_cast<unsigned long long>(cfg.keyframe_interval));
    w.kv("frames", static_cast<unsigned long long>(reader.frame_count()));
    w.kv("iframes", static_cast<unsigned long long>(iframes));
    w.kv("pframes", static_cast<unsigned long long>(pframes));
    w.kv("predicted_chunks", static_cast<unsigned long long>(predicted_chunks));
    w.kv("intra_chunks", static_cast<unsigned long long>(intra_chunks));
    w.kv("keyframes", static_cast<unsigned long long>(reader.keyframes().size()));
    w.kv("raw_bytes", raw_bytes);
    w.kv("file_bytes", static_cast<unsigned long long>(file_bytes));
    w.kv("payload_bytes", static_cast<unsigned long long>(payload_bytes));
    w.kv("ratio", ratio);
    w.kv("truncated", reader.truncated());
    w.kv("truncated_bytes", static_cast<unsigned long long>(reader.truncated_bytes()));
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("%s: pfpv stream, dtype=%s eb=%s eps=%g dims=%ux%ux%u "
                "keyframe-interval=%u\n",
                path.c_str(), to_string(cfg.dtype), to_string(cfg.eb), cfg.eps,
                cfg.dims[0], cfg.dims[1], cfg.dims[2], cfg.keyframe_interval);
    std::printf("frames=%zu (%llu I + %llu P), chunks %llu predicted + %llu intra, "
                "%zu keyframe(s) indexed\n",
                reader.frame_count(), static_cast<unsigned long long>(iframes),
                static_cast<unsigned long long>(pframes),
                static_cast<unsigned long long>(predicted_chunks),
                static_cast<unsigned long long>(intra_chunks),
                reader.keyframes().size());
    std::printf("raw=%.0f file=%llu bytes ratio=%.3f\n", raw_bytes,
                static_cast<unsigned long long>(file_bytes), ratio);
    if (reader.truncated())
      std::printf("TRUNCATED: recovered %zu complete frame(s), discarded %zu torn "
                  "byte(s)\n",
                  reader.frame_count(), reader.truncated_bytes());
  }
  return 0;
}

int cmd_stats(const std::vector<std::string>& positional, const Flags& fl) {
  if (positional.size() != 1) usage();
  const std::string& path = positional[0];
  // Dispatch on the container magic up front: a file none of the handled
  // formats claims is rejected (exit 2) instead of misparsed by whichever
  // parser happens to throw last.
  const u32 magic = peek_magic(path);
  if (magic == temporal::kPfpvMagic) return pfpv_stats(path, fl.json);
  if (magic != svc::kArchiveMagic && magic != pfpl::kMagic)
    reject_magic("stats", path, magic);
  if (magic == svc::kArchiveMagic) {
    svc::ArchiveReader reader(path);
    u64 total_raw = 0, total_comp = 0;
    for (const svc::ArchiveEntry& e : reader.entries()) {
      total_raw += e.raw_size;
      total_comp += e.size;
    }
    double ratio = total_comp ? static_cast<double>(total_raw) / total_comp : 0.0;
    if (fl.json) {
      obs::JsonWriter w;
      w.begin_object();
      w.kv("file", path);
      w.kv("kind", "pfpa");
      w.key("entries").begin_array();
      for (const svc::ArchiveEntry& e : reader.entries()) {
        w.begin_object();
        w.kv("name", e.name);
        w.kv("dtype", to_string(e.dtype));
        w.kv("eb", to_string(e.eb_type));
        w.kv("eps", e.eps);
        w.kv("raw_bytes", static_cast<unsigned long long>(e.raw_size));
        w.kv("compressed_bytes", static_cast<unsigned long long>(e.size));
        w.kv("ratio", e.size ? static_cast<double>(e.raw_size) / e.size : 0.0);
        w.end_object();
      }
      w.end_array();
      w.key("totals").begin_object();
      w.kv("entries", static_cast<unsigned long long>(reader.entries().size()));
      w.kv("raw_bytes", static_cast<unsigned long long>(total_raw));
      w.kv("compressed_bytes", static_cast<unsigned long long>(total_comp));
      w.kv("ratio", ratio);
      w.end_object();
      w.end_object();
      std::printf("%s\n", w.str().c_str());
    } else {
      std::printf("%s: pfpa archive, %zu entries, raw=%llu compressed=%llu ratio=%.3f\n",
                  path.c_str(), reader.entries().size(),
                  static_cast<unsigned long long>(total_raw),
                  static_cast<unsigned long long>(total_comp), ratio);
    }
    return 0;
  }
  Bytes in = io::read_file(path);
  pfpl::Header h = pfpl::peek_header(in);
  double raw = static_cast<double>(h.value_count) * dtype_size(h.dtype);
  double ratio = in.size() ? raw / static_cast<double>(in.size()) : 0.0;
  if (fl.json) {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("file", path);
    w.kv("kind", "pfpl");
    w.kv("dtype", to_string(h.dtype));
    w.kv("eb", to_string(h.eb_type));
    w.kv("eps", h.eps);
    w.kv("recon_param", h.recon_param);
    w.kv("values", static_cast<unsigned long long>(h.value_count));
    w.kv("chunks", static_cast<unsigned long long>(h.chunk_count));
    w.kv("compressed_bytes", static_cast<unsigned long long>(in.size()));
    w.kv("ratio", ratio);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("%s: pfpl stream, dtype=%s eb=%s eps=%g values=%llu chunks=%u "
                "compressed=%zu ratio=%.3f\n",
                path.c_str(), to_string(h.dtype), to_string(h.eb_type), h.eps,
                static_cast<unsigned long long>(h.value_count), h.chunk_count, in.size(),
                ratio);
  }
  return 0;
}

// SIGINT/SIGTERM handler target for `pfpl serve`. request_stop() is
// async-signal-safe (atomic store + one write() on the wake pipe).
net::Server* g_serving = nullptr;

extern "C" void serve_signal_handler(int) {
  if (g_serving) g_serving->request_stop();
}

int cmd_serve(const std::vector<std::string>& positional, const Flags& fl) {
  if (!positional.empty()) usage();
  net::Server::Options opts;
  opts.bind_host = fl.bind;
  opts.port = static_cast<u16>(fl.port);
  opts.threads = fl.threads;
  if (fl.max_inflight) opts.max_inflight_bytes = fl.max_inflight;
  opts.exec = fl.params.exec;
  opts.slow_ms = fl.slow_ms;
  opts.metrics_port = fl.metrics_port;
  opts.flight_ms = fl.flight_ms;
  opts.flight_depth = fl.flight_depth;
  opts.stall_ms = fl.stall_ms;
  opts.crash_dir = fl.crash_dir;
  opts.max_conns = fl.max_conns;
  opts.use_epoll = !fl.poll;
  opts.max_sessions = fl.max_sessions;
  opts.session_idle_ms = fl.session_idle_ms;
  if (!fl.shard_map.empty()) {
    opts.shard_map = cluster::ShardMap::load_file(fl.shard_map);
    opts.node_id = fl.node_id;
  } else if (!fl.node_id.empty()) {
    throw CompressionError("serve: --node-id requires --shard-map");
  }
  if (!fl.slow_log.empty()) {
    // Route slow-request events (and any other EventLog traffic) to a file
    // instead of stderr. Deliberately independent of --trace/--metrics: the
    // slow log is a production artifact, not a span-recording artifact.
    obs::EventLog::Options lo;
    lo.path = fl.slow_log;
    obs::EventLog::global().configure(lo);
  }
  if (!fl.store_dir.empty() || fl.cache_mb) {
    // --store DIR enables the persistent tier; --cache-mb alone runs a
    // memory-only result cache in front of the workers.
    store::ChunkStore::Options so;
    so.dir = fl.store_dir;
    if (fl.cache_mb) so.cache.byte_budget = static_cast<std::size_t>(fl.cache_mb) << 20;
    opts.store = std::make_shared<store::ChunkStore>(so);
  }
  net::Server server(opts);
  g_serving = &server;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  // One parseable line, flushed before the loop starts, so scripts (and the
  // CI smoke job) can learn the bound port even when stdout is a pipe.
  std::printf("pfpl: serving on %s:%u (threads=%u, exec=%s, max-inflight=%zu)\n",
              opts.bind_host.c_str(), static_cast<unsigned>(server.port()),
              opts.threads, to_string(opts.exec), opts.max_inflight_bytes);
  if (opts.store)
    std::printf("pfpl: chunk store: cache=%zuMB%s%s\n",
                opts.store->cache().byte_budget() >> 20,
                opts.store->persistent() ? " dir=" : " (memory only)",
                fl.store_dir.c_str());
  // Same contract as the serving line: parseable, flushed before the loop.
  if (fl.metrics_port >= 0)
    std::printf("pfpl: metrics on %s:%u (GET /metrics, /metrics.json, /stats, /history)\n",
                opts.bind_host.c_str(), static_cast<unsigned>(server.metrics_port()));
  if (fl.slow_ms > 0)
    std::printf("pfpl: slow-request capture: threshold=%dms log=%s\n", fl.slow_ms,
                fl.slow_log.empty() ? "stderr" : fl.slow_log.c_str());
  if (fl.flight_ms > 0 || fl.stall_ms > 0 || !fl.crash_dir.empty())
    std::printf("pfpl: flight recorder: interval=%dms depth=%d stall=%llums "
                "crash-dir=%s\n",
                fl.flight_ms > 0 ? fl.flight_ms : 1000, fl.flight_depth,
                static_cast<unsigned long long>(fl.stall_ms),
                fl.crash_dir.empty() ? "(none)" : fl.crash_dir.c_str());
  if (!fl.shard_map.empty()) {
    const cluster::ShardMap m = server.shard_map();
    std::printf("pfpl: cluster '%s': node=%s epoch=%llu nodes=%zu replicas=%u "
                "vnodes=%u\n",
                m.cluster_id().c_str(),
                fl.node_id.empty() ? "(by port)" : fl.node_id.c_str(),
                static_cast<unsigned long long>(m.epoch()), m.size(),
                static_cast<unsigned>(m.replicas()), m.vnodes());
  }
  std::printf("pfpl: stream sessions: max=%zu idle-timeout=%dms\n", opts.max_sessions,
              opts.session_idle_ms);
  std::fflush(stdout);
  server.run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serving = nullptr;
  const net::Server::Stats st = server.stats();
  std::printf("pfpl: server drained: %llu conns, %llu compress + %llu decompress + "
              "%llu other requests, %llu errors, rx=%llu tx=%llu bytes\n",
              static_cast<unsigned long long>(st.connections_accepted),
              static_cast<unsigned long long>(st.requests_compress),
              static_cast<unsigned long long>(st.requests_decompress),
              static_cast<unsigned long long>(st.requests_other),
              static_cast<unsigned long long>(st.errors),
              static_cast<unsigned long long>(st.bytes_rx),
              static_cast<unsigned long long>(st.bytes_tx));
  if (opts.store) {
    opts.store->sync();
    std::printf("pfpl: chunk store: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(st.store_hits),
                static_cast<unsigned long long>(st.store_misses));
  }
  if (st.sessions_opened)
    std::printf("pfpl: stream sessions: %llu opened, %llu closed, %llu evicted, "
                "%llu frames\n",
                static_cast<unsigned long long>(st.sessions_opened),
                static_cast<unsigned long long>(st.sessions_closed),
                static_cast<unsigned long long>(st.sessions_evicted),
                static_cast<unsigned long long>(st.stream_frames));
  if (obs::enabled()) obs::RunReport::global().add_section("net", server.stats_json());
  return 0;
}

int cmd_remote(const std::vector<std::string>& positional, const Flags& fl) {
  if (positional.empty()) usage();
  const std::string& verb = positional[0];
  if (fl.host.empty()) {
    std::fprintf(stderr, "pfpl remote: --host H:P is required\n");
    usage();
  }
  net::Client::Options copts;
  net::split_host_port(fl.host, copts.host, copts.port);
  if (fl.timeout_ms > 0) {
    copts.connect_timeout_ms = fl.timeout_ms;
    copts.request_timeout_ms = fl.timeout_ms;
  }
  net::Client client(copts);
  if (verb == "compress") {
    if (positional.size() != 3) usage();
    std::vector<u8> raw = io::read_file(positional[1]);
    Bytes out = client.compress(raw.data(), raw.size(), fl.dtype, fl.params.eb,
                                fl.params.eps);
    io::write_file(positional[2], out.data(), out.size());
    std::printf("%zu -> %zu bytes (ratio %.3f)\n", raw.size(), out.size(),
                out.empty() ? 0.0
                            : static_cast<double>(raw.size()) /
                                  static_cast<double>(out.size()));
    return 0;
  }
  if (verb == "decompress") {
    if (positional.size() != 3) usage();
    Bytes in = io::read_file(positional[1]);
    std::vector<u8> raw = client.decompress(in);
    io::write_file(positional[2], raw.data(), raw.size());
    std::printf("%zu -> %zu bytes\n", in.size(), raw.size());
    return 0;
  }
  if (positional.size() != 1) usage();
  if (verb == "stats") {
    std::printf("%s\n", client.stats().c_str());
    return 0;
  }
  if (verb == "metrics") {
    // Prometheus text already ends in '\n'; the JSON documents do not.
    const std::string doc = fl.history ? client.metrics_fmt("history")
                                       : client.metrics(fl.prom);
    std::printf(fl.prom ? "%s" : "%s\n", doc.c_str());
    return 0;
  }
  if (verb == "ping") {
    client.ping();
    std::printf("pfpl: %s is alive\n", fl.host.c_str());
    return 0;
  }
  if (verb == "shutdown") {
    client.shutdown_server();
    std::printf("pfpl: %s is draining\n", fl.host.c_str());
    return 0;
  }
  usage();
}

/// `pfpl cluster` — shard-map tooling plus cluster-routed data operations.
/// `init` is pure file manipulation (no network); `status` polls HEALTH on
/// every node; `put`/`get` route one COMPRESS/DECOMPRESS through the
/// consistent-hash ring exactly as a cluster-aware application would.
int cmd_cluster(const std::vector<std::string>& positional, const Flags& fl) {
  if (positional.empty()) usage();
  const std::string& verb = positional[0];

  auto load_map = [&]() -> cluster::ShardMap {
    if (fl.shard_map.empty()) {
      std::fprintf(stderr, "pfpl cluster %s: --shard-map FILE is required\n",
                   verb.c_str());
      usage();
    }
    return cluster::ShardMap::load_file(fl.shard_map);
  };
  auto make_client = [&](cluster::ShardMap map) {
    cluster::ClusterClient::Options co;
    co.map = std::move(map);
    if (fl.timeout_ms > 0) {
      co.connect_timeout_ms = fl.timeout_ms;
      co.request_timeout_ms = fl.timeout_ms;
    }
    return cluster::ClusterClient(std::move(co));
  };
  // The node that actually answered the last data request (by id).
  auto answered_by = [](const cluster::ClusterClient& cc) -> std::string {
    for (const auto& [id, n] : cc.stats().node_requests)
      if (n > 0) return id;
    return "?";
  };

  if (verb == "init") {
    if (positional.size() != 2) usage();
    if (fl.nodes.empty()) {
      std::fprintf(stderr,
                   "pfpl cluster init: --nodes [id=]H:P,[id=]H:P,... is required\n");
      usage();
    }
    std::vector<cluster::NodeInfo> nodes;
    std::size_t auto_id = 0;
    for (std::size_t pos = 0; pos < fl.nodes.size();) {
      std::size_t comma = fl.nodes.find(',', pos);
      if (comma == std::string::npos) comma = fl.nodes.size();
      const std::string tok = fl.nodes.substr(pos, comma - pos);
      pos = comma + 1;
      if (tok.empty()) continue;
      cluster::NodeInfo n;
      const std::size_t eq = tok.find('=');
      std::string hp = tok;
      if (eq != std::string::npos) {
        n.id = tok.substr(0, eq);
        hp = tok.substr(eq + 1);
      } else {
        n.id = "n" + std::to_string(auto_id);
      }
      ++auto_id;
      net::split_host_port(hp, n.host, n.port);
      nodes.push_back(std::move(n));
    }
    const cluster::ShardMap map(
        fl.cluster_id, std::move(nodes),
        fl.vnodes ? fl.vnodes : cluster::ShardMap::kDefaultVnodes,
        fl.replicas ? static_cast<u16>(fl.replicas)
                    : cluster::ShardMap::kDefaultReplicas);
    map.save_file(positional[1]);
    std::printf("pfpl: wrote %s: cluster '%s', %zu node(s), replicas=%u, "
                "vnodes=%u, epoch=%llu\n",
                positional[1].c_str(), map.cluster_id().c_str(), map.size(),
                static_cast<unsigned>(map.replicas()), map.vnodes(),
                static_cast<unsigned long long>(map.epoch()));
    return 0;
  }

  if (verb == "status") {
    if (positional.size() != 1) usage();
    const cluster::ShardMap map = load_map();
    cluster::ClusterClient cc = make_client(map);
    std::vector<std::string> health(map.size());
    std::size_t alive = 0;
    for (std::size_t i = 0; i < map.size(); ++i) {
      try {
        health[i] = cc.health(map.nodes()[i].id);
        ++alive;
      } catch (const CompressionError&) {
        health[i].clear();  // unreachable
      }
    }
    if (fl.json) {
      // map.json() and HEALTH payloads are already JSON documents; splice
      // them rather than re-encoding.
      std::string out = "{\"map\":" + map.json() + ",\"nodes\":{";
      for (std::size_t i = 0; i < map.size(); ++i) {
        if (i) out += ",";
        out += "\"" + map.nodes()[i].id +
               "\":" + (health[i].empty() ? "null" : health[i]);
      }
      out += "}}";
      std::printf("%s\n", out.c_str());
    } else {
      std::printf("cluster '%s': epoch=%llu nodes=%zu replicas=%u vnodes=%u\n",
                  map.cluster_id().c_str(),
                  static_cast<unsigned long long>(map.epoch()), map.size(),
                  static_cast<unsigned>(map.replicas()), map.vnodes());
      auto num = [](const obs::JsonValue& o, const char* k) -> double {
        return o.has(k) ? o.at(k).num : 0.0;
      };
      for (std::size_t i = 0; i < map.size(); ++i) {
        const cluster::NodeInfo& n = map.nodes()[i];
        if (health[i].empty()) {
          std::printf("  %-8s %s:%u  DOWN\n", n.id.c_str(), n.host.c_str(),
                      static_cast<unsigned>(n.port));
          continue;
        }
        const obs::JsonValue h = obs::parse_json(health[i]);
        std::printf("  %-8s %s:%u  up %.0fs  epoch=%.0f conns=%.0f reqs=%.0f "
                    "errors=%.0f%s\n",
                    n.id.c_str(), n.host.c_str(), static_cast<unsigned>(n.port),
                    num(h, "uptime_s"), num(h, "epoch"),
                    num(h, "connections_current"), num(h, "requests"),
                    num(h, "errors"),
                    num(h, "draining") != 0 ? "  DRAINING" : "");
      }
      std::printf("%zu/%zu node(s) up\n", alive, map.size());
    }
    return alive == map.size() ? 0 : 1;
  }

  if (verb == "put") {
    if (positional.size() != 3) usage();
    cluster::ClusterClient cc = make_client(load_map());
    std::vector<u8> raw = io::read_file(positional[1]);
    Bytes out =
        cc.compress(raw.data(), raw.size(), fl.dtype, fl.params.eb, fl.params.eps);
    io::write_file(positional[2], out.data(), out.size());
    std::printf("%zu -> %zu bytes (ratio %.3f) via node %s\n", raw.size(), out.size(),
                out.empty() ? 0.0
                            : static_cast<double>(raw.size()) /
                                  static_cast<double>(out.size()),
                answered_by(cc).c_str());
    return 0;
  }

  if (verb == "get") {
    if (positional.size() != 3) usage();
    cluster::ClusterClient cc = make_client(load_map());
    Bytes in = io::read_file(positional[1]);
    std::vector<u8> raw = cc.decompress(in);
    io::write_file(positional[2], raw.data(), raw.size());
    std::printf("%zu -> %zu bytes via node %s\n", in.size(), raw.size(),
                answered_by(cc).c_str());
    return 0;
  }

  usage();
}

/// `pfpl top` — poll the server's METRICS op and render one status line per
/// tick. Rates (req/s, MB/s, hit ratio) are deltas between consecutive
/// scrapes; latency quantiles come from the net.request_us histogram bucket
/// deltas over the same window, falling back to the server's cumulative
/// quantiles on the first tick or when the window saw no requests. Columns
/// show '-' when the server has span/metric recording disabled (the stats
/// block is always live, so throughput still renders).
/// Scrape one node's METRICS document into a TopSample. Shared between the
/// single-host and --cluster modes.
cli::TopSample scrape_metrics(net::Client& client) {
  auto num = [](const obs::JsonValue& o, const char* k) -> double {
    return o.has(k) ? o.at(k).num : 0.0;
  };
  cli::TopSample s;
  s.t = std::chrono::duration<double>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
  const obs::JsonValue doc = obs::parse_json(client.metrics(false));
  const obs::JsonValue& st = doc.at("stats");
  s.req = num(st, "requests_compress") + num(st, "requests_decompress") +
          num(st, "requests_other");
  s.bytes_rx = num(st, "bytes_rx");
  s.bytes_tx = num(st, "bytes_tx");
  s.hits = num(st, "store_hits");
  s.misses = num(st, "store_misses");
  s.conns = num(st, "connections_current");
  s.slow = num(st, "slow_requests_captured");
  s.errors = num(st, "errors");
  if (st.has("sessions")) s.sessions = num(st.at("sessions"), "current");
  const obs::JsonValue& m = doc.at("metrics");
  if (m.has("gauges") && m.at("gauges").has("svc.pool.queue_depth"))
    s.queue = num(m.at("gauges").at("svc.pool.queue_depth"), "value");
  if (m.has("histograms") && m.at("histograms").has("net.request_us")) {
    const obs::JsonValue& h = m.at("histograms").at("net.request_us");
    if (num(h, "count") > 0) {
      s.has_hist = true;
      s.p50 = num(h, "p50");
      s.p95 = num(h, "p95");
      s.p99 = num(h, "p99");
      if (h.has("bounds"))
        for (const obs::JsonValue& b : h.at("bounds").arr) s.bounds.push_back(b.num);
      if (h.has("buckets"))
        for (const obs::JsonValue& b : h.at("buckets").arr) s.buckets.push_back(b.num);
    }
  }
  return s;
}

/// `pfpl top --cluster` — the same rate-converted columns, one row per node
/// per tick, scraped from every node in the shard map. A node that fails to
/// answer renders as DOWN and its window re-anchors when it comes back.
int cmd_top_cluster(const Flags& fl) {
  if (fl.shard_map.empty()) {
    std::fprintf(stderr, "pfpl top --cluster: --shard-map FILE is required\n");
    usage();
  }
  const cluster::ShardMap map = cluster::ShardMap::load_file(fl.shard_map);
  std::vector<net::Client> clients;
  clients.reserve(map.size());
  for (const cluster::NodeInfo& n : map.nodes()) {
    net::Client::Options co;
    co.host = n.host;
    co.port = n.port;
    co.retry = false;  // a dead node should render DOWN now, not after retries
    co.connect_timeout_ms = fl.timeout_ms > 0 ? fl.timeout_ms : 1000;
    co.request_timeout_ms = fl.timeout_ms > 0 ? fl.timeout_ms : 2000;
    clients.emplace_back(std::move(co));
  }

  const std::string ticks =
      fl.count ? " (" + std::to_string(fl.count) + " ticks)" : std::string();
  std::printf("pfpl top: cluster '%s' (%zu nodes, epoch %llu) every %dms%s\n",
              map.cluster_id().c_str(), map.size(),
              static_cast<unsigned long long>(map.epoch()), fl.interval_ms,
              ticks.c_str());
  std::printf("%-8s %10s %10s %10s %9s %6s %6s %6s\n", "node", "req/s", "rx MB/s",
              "tx MB/s", "p99(us)", "hit%", "conns", "errs");
  std::fflush(stdout);

  std::vector<cli::TopSample> prev(map.size());
  std::vector<bool> prev_ok(map.size(), false);
  auto scrape_into = [&](std::size_t i, cli::TopSample& out) -> bool {
    try {
      out = scrape_metrics(clients[i]);
      return true;
    } catch (const CompressionError&) {
      return false;  // NetError/RemoteError/parse failure: node is down
    }
  };
  for (std::size_t i = 0; i < map.size(); ++i) prev_ok[i] = scrape_into(i, prev[i]);

  for (int tick = 0; fl.count == 0 || tick < fl.count; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fl.interval_ms));
    for (std::size_t i = 0; i < map.size(); ++i) {
      const std::string& id = map.nodes()[i].id;
      cli::TopSample cur;
      if (!scrape_into(i, cur)) {
        std::printf("%-8s %10s\n", id.c_str(), "DOWN");
        prev_ok[i] = false;
        continue;
      }
      if (!prev_ok[i]) {
        // First successful scrape (or the node just came back): no window
        // yet, so show lifetime quantiles and re-anchor.
        char q99[32];
        if (cur.has_hist)
          std::snprintf(q99, sizeof q99, "%.0f", cur.p99);
        else
          std::snprintf(q99, sizeof q99, "-");
        std::printf("%-8s %10s %10s %10s %9s %6s %6.0f %6.0f\n", id.c_str(), "-",
                    "-", "-", q99, "-", cur.conns, cur.errors);
        prev[i] = cur;
        prev_ok[i] = true;
        continue;
      }
      const cli::TopWindow w =
          cli::compute_window(prev[i], cur, fl.interval_ms / 1000.0);
      if (w.reset) {
        std::printf("%-8s %10s  -- restarted, counters reset --\n", id.c_str(), "");
        prev[i] = cur;
        continue;
      }
      char q99[32], hitbuf[16];
      if (w.p99 < 0)
        std::snprintf(q99, sizeof q99, "-");
      else
        std::snprintf(q99, sizeof q99, "%.0f", w.p99);
      if (w.have_hit)
        std::snprintf(hitbuf, sizeof hitbuf, "%.1f", w.hit_pct);
      else
        std::snprintf(hitbuf, sizeof hitbuf, "-");
      std::printf("%-8s %10.1f %10.2f %10.2f %9s %6s %6.0f %6.0f\n", id.c_str(),
                  w.rps, w.rx_mbps, w.tx_mbps, q99, hitbuf, cur.conns, cur.errors);
      prev[i] = cur;
    }
    if (map.size() > 1) std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}

int cmd_top(const std::vector<std::string>& positional, const Flags& fl) {
  if (!positional.empty()) usage();
  if (fl.cluster) return cmd_top_cluster(fl);
  if (fl.host.empty()) {
    std::fprintf(stderr, "pfpl top: --host H:P is required\n");
    usage();
  }
  net::Client::Options copts;
  net::split_host_port(fl.host, copts.host, copts.port);
  if (fl.timeout_ms > 0) {
    copts.connect_timeout_ms = fl.timeout_ms;
    copts.request_timeout_ms = fl.timeout_ms;
  }
  net::Client client(copts);

  auto scrape = [&]() -> cli::TopSample { return scrape_metrics(client); };

  const std::string ticks =
      fl.count ? " (" + std::to_string(fl.count) + " ticks)" : std::string();
  std::printf("pfpl top: %s every %dms%s\n", fl.host.c_str(), fl.interval_ms,
              ticks.c_str());
  std::printf("%10s %10s %10s %9s %9s %9s %6s %6s %6s %6s %6s\n", "req/s",
              "rx MB/s", "tx MB/s", "p50(us)", "p95(us)", "p99(us)", "hit%", "conns",
              "sess", "queue", "slow");
  std::fflush(stdout);

  cli::TopSample prev = scrape();
  for (int tick = 0; fl.count == 0 || tick < fl.count; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fl.interval_ms));
    cli::TopSample cur = scrape();
    const cli::TopWindow w =
        cli::compute_window(prev, cur, fl.interval_ms / 1000.0);
    if (w.reset) {
      // Cumulative counters went backwards: the server restarted between
      // scrapes. Rates over that window are meaningless — say so and
      // re-anchor on the new process's counters.
      std::printf("%10s  -- server restarted, counters reset --\n", "");
      std::fflush(stdout);
      prev = cur;
      continue;
    }

    char q50[32], q95[32], q99[32], hitbuf[16];
    auto fmt_q = [](char* buf, std::size_t n, double v) {
      if (v < 0)
        std::snprintf(buf, n, "-");
      else
        std::snprintf(buf, n, "%.0f", v);
    };
    fmt_q(q50, sizeof q50, w.p50);
    fmt_q(q95, sizeof q95, w.p95);
    fmt_q(q99, sizeof q99, w.p99);
    if (w.have_hit)
      std::snprintf(hitbuf, sizeof hitbuf, "%.1f", w.hit_pct);
    else
      std::snprintf(hitbuf, sizeof hitbuf, "-");
    std::printf("%10.1f %10.2f %10.2f %9s %9s %9s %6s %6.0f %6.0f %6.0f %6.0f\n",
                w.rps, w.rx_mbps, w.tx_mbps, q50, q95, q99, hitbuf, cur.conns,
                cur.sessions, cur.queue, cur.slow);
    std::fflush(stdout);
    prev = cur;
  }
  return 0;
}

/// `pfpl profile` — per-kernel throughput attribution over the synthetic
/// suites. Forces metric recording on, runs compress -> decompress for every
/// (suite, file) of each dtype group, and prints the kernel attribution
/// table per group, with a consistency line against the whole-chunk timer
/// (attributed kernel time can never exceed core.encode_chunk_us — per-call
/// durations are floored to whole microseconds).
int cmd_profile(const std::vector<std::string>& positional, const Flags& fl) {
  if (!positional.empty()) usage();
  // Validate --suite against BOTH suite families up front: an unknown name
  // exits 2 with the full roster instead of silently profiling nothing.
  bool suite_is_evolving = false;
  if (!fl.suite.empty()) {
    bool known = false;
    for (const data::SuiteSpec& s : data::paper_suites())
      known = known || s.name == fl.suite;
    for (const data::EvolvingSpec& s : data::evolving_suites())
      if (s.name == fl.suite) known = suite_is_evolving = true;
    if (!known) {
      std::string roster;
      for (const data::SuiteSpec& s : data::paper_suites()) roster += s.name + " ";
      for (const data::EvolvingSpec& s : data::evolving_suites()) roster += s.name + " ";
      std::fprintf(stderr, "pfpl profile: unknown suite '%s' (snapshot + evolving "
                   "suites: %s)\n", fl.suite.c_str(), roster.c_str());
      return 2;
    }
  }
  obs::set_enabled(true);  // attribution is the whole point of the verb
  const std::size_t target_values = fl.full ? (1u << 20) : (1u << 16);
  const int max_files = fl.full ? 2 : 1;

  obs::JsonWriter jw;
  jw.begin_object();
  jw.kv("schema", "pfpl-profile/1");
  jw.kv("eb", to_string(fl.params.eb));
  jw.kv("eps", fl.params.eps);
  jw.kv("exec", pfpl::to_string(fl.params.exec));
  jw.key("groups").begin_array();

  bool ran_any = false;
  std::string last_report;
  for (DType dtype : {DType::F32, DType::F64}) {
    if (fl.dtype_set && dtype != fl.dtype) continue;
    std::vector<data::Suite> suites;
    std::size_t total_bytes = 0;
    for (const data::SuiteSpec& spec : data::paper_suites()) {
      if (spec.dtype != dtype) continue;
      if (!fl.suite.empty() && spec.name != fl.suite) continue;
      suites.push_back(data::generate(spec, target_values, max_files));
      total_bytes += suites.back().total_bytes();
    }
    if (suites.empty()) continue;
    ran_any = true;

    // Each dtype group starts from a clean registry so its table attributes
    // only its own traffic.
    obs::MetricsRegistry::global().reset();
    for (const data::Suite& s : suites)
      for (const data::SyntheticFile& f : s.files) {
        const Bytes stream = pfpl::compress(f.field(), fl.params);
        const std::vector<u8> back = pfpl::decompress(stream, fl.params.exec);
        (void)back;
      }

    const u64 chunk_us =
        obs::MetricsRegistry::global().histogram("core.encode_chunk_us").sum();
    u64 attributed_us = 0;
    for (const obs::KernelStat& k : obs::kernel_stats())
      if (k.encode) attributed_us += k.us;
    last_report = obs::kernel_report_json();

    if (!fl.json) {
      std::printf("== %s: %zu suite(s), %.1f MB, eb=%s eps=%g exec=%s ==\n",
                  to_string(dtype), suites.size(), total_bytes / 1e6,
                  to_string(fl.params.eb), fl.params.eps,
                  pfpl::to_string(fl.params.exec));
      std::printf("%s", obs::kernel_table_text().c_str());
      std::printf("encode: %llu us in kernels of %llu us per-chunk total (%.1f%% "
                  "attributed)\n\n",
                  static_cast<unsigned long long>(attributed_us),
                  static_cast<unsigned long long>(chunk_us),
                  chunk_us ? 100.0 * static_cast<double>(attributed_us) /
                                 static_cast<double>(chunk_us)
                           : 0.0);
    }
    jw.begin_object();
    jw.kv("dtype", to_string(dtype));
    jw.key("suites").begin_array();
    for (const data::Suite& s : suites) jw.value(s.spec.name);
    jw.end_array();
    jw.kv("bytes", static_cast<unsigned long long>(total_bytes));
    jw.kv("chunk_encode_us", static_cast<unsigned long long>(chunk_us));
    jw.kv("attributed_encode_us", static_cast<unsigned long long>(attributed_us));
    jw.key("kernels").raw(last_report);
    jw.end_object();
  }

  // Temporal groups: the evolving suites run through the PFPV frame path
  // (FrameEncoder/FrameDecoder), so the kernel table attributes the
  // closed-loop prediction traffic too.
  for (const data::EvolvingSpec& spec : data::evolving_suites()) {
    if (!fl.suite.empty() && spec.name != fl.suite) continue;
    if (fl.dtype_set && spec.dtype != fl.dtype) continue;
    if (fl.params.eb == EbType::REL && !suite_is_evolving)
      continue;  // REL sessions are all-intra; profile them only on request
    const std::size_t frames = fl.full ? 32 : 8;
    const data::FrameSequence seq =
        data::generate_evolving(spec, target_values, frames);
    ran_any = true;
    obs::MetricsRegistry::global().reset();
    temporal::SessionConfig cfg;
    cfg.dtype = spec.dtype;
    cfg.eb = fl.params.eb;
    cfg.eps = fl.params.eps;
    cfg.dims = {static_cast<u32>(seq.dims[0]), static_cast<u32>(seq.dims[1]),
                static_cast<u32>(seq.dims[2])};
    cfg.exec = fl.params.exec;
    temporal::FrameEncoder enc(cfg);
    temporal::FrameDecoder dec(cfg);
    std::size_t stream_bytes = 0;
    for (std::size_t i = 0; i < seq.frames(); ++i) {
      const temporal::EncodedFrame ef = enc.encode(seq.frame(i));
      stream_bytes += ef.byte_size();
      dec.decode(ef);
    }
    const u64 chunk_us =
        obs::MetricsRegistry::global().histogram("core.encode_chunk_us").sum();
    last_report = obs::kernel_report_json();
    const std::size_t raw_bytes = seq.frames() * cfg.frame_bytes();
    if (!fl.json) {
      std::printf("== temporal/%s: %zu frame(s), %.1f MB raw, %llu I + %llu P, "
                  "ratio %.2f ==\n",
                  spec.name.c_str(), seq.frames(), raw_bytes / 1e6,
                  static_cast<unsigned long long>(enc.intra_frames()),
                  static_cast<unsigned long long>(enc.predicted_frames()),
                  stream_bytes ? static_cast<double>(raw_bytes) / stream_bytes : 0.0);
      std::printf("%s\n", obs::kernel_table_text().c_str());
    }
    jw.begin_object();
    jw.kv("dtype", to_string(spec.dtype));
    jw.kv("temporal_suite", spec.name);
    jw.kv("frames", static_cast<unsigned long long>(seq.frames()));
    jw.kv("bytes", static_cast<unsigned long long>(raw_bytes));
    jw.kv("stream_bytes", static_cast<unsigned long long>(stream_bytes));
    jw.kv("iframes", static_cast<unsigned long long>(enc.intra_frames()));
    jw.kv("pframes", static_cast<unsigned long long>(enc.predicted_frames()));
    jw.kv("chunk_encode_us", static_cast<unsigned long long>(chunk_us));
    jw.key("kernels").raw(last_report);
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();

  if (!ran_any) {
    std::fprintf(stderr, "pfpl profile: no suite matched the filters\n");
    return 1;
  }
  if (fl.json) std::printf("%s\n", jw.str().c_str());
  obs::RunReport::global().add_section("kernels", last_report);
  return 0;
}

/// `pfpl store put/get/ls/compact/verify` — operate a PFPS store directly.
int cmd_store(const std::vector<std::string>& positional, const Flags& fl) {
  if (positional.empty()) usage();
  const std::string& verb = positional[0];
  if (fl.store_dir.empty()) {
    std::fprintf(stderr, "pfpl store: --store DIR is required\n");
    usage();
  }
  store::ChunkStore::Options so;
  so.dir = fl.store_dir;
  if (fl.cache_mb) so.cache.byte_budget = static_cast<std::size_t>(fl.cache_mb) << 20;
  store::ChunkStore cs(so);
  store::SegmentStore& log = *cs.log();

  if (verb == "put") {
    if (positional.size() < 2) usage();
    if (positional.size() == 2) {
      // Single file: the synchronous path, which can print the content key
      // (the pipeline's probe computes keys internally).
      std::vector<u8> raw = io::read_file(positional[1]);
      const common::Hash128 key = store::compress_key(raw.data(), raw.size(), fl.dtype,
                                                      fl.params.eb, fl.params.eps);
      Bytes cached;
      if (cs.get(key, cached)) {
        std::printf("%s: already stored (%zu bytes)\n", key.hex().c_str(), cached.size());
        return 0;
      }
      Bytes stream = pfpl::compress(make_field(raw, fl.dtype), fl.params);
      cs.put(key, stream,
             store::ChunkMeta{fl.dtype, fl.params.eb, fl.params.eps, raw.size()});
      cs.sync();
      std::printf("%s: stored %zu -> %zu bytes (ratio %.3f)\n", key.hex().c_str(),
                  raw.size(), stream.size(),
                  stream.empty() ? 0.0
                                 : static_cast<double>(raw.size()) /
                                       static_cast<double>(stream.size()));
      return 0;
    }
    // Multiple files: the staged ingest pipeline (read / dedup probe /
    // encode / batched store appends overlapped) — the same machinery as
    // `pfpl pack`, with the store itself as the sink (no archive).
    ingest::IngestPipeline::Options po;
    po.dtype = fl.dtype;
    po.params = fl.params;
    po.threads = fl.threads;
    po.audit = fl.audit;
    po.store = &cs;
    if (fl.progress)
      po.progress = [](const ingest::Result& r, std::size_t i, std::size_t n) {
        std::fprintf(stderr, "pfpl: [%zu/%zu] %s: %s\n", i + 1, n, r.name.c_str(),
                     r.failed || r.cancelled ? r.error.c_str()
                     : r.reused             ? "already stored"
                                            : "stored");
      };
    std::vector<ingest::Item> items;
    items.reserve(positional.size() - 1);
    for (std::size_t i = 1; i < positional.size(); ++i)
      items.push_back(ingest::Item{positional[i], positional[i], {}});
    ingest::IngestPipeline pipe(po);
    const std::vector<ingest::Result> results = pipe.run(std::move(items));
    cs.sync();
    int failed = 0;
    u64 reused = 0, stored_bytes = 0, raw_bytes = 0, audit_violations = 0;
    for (const ingest::Result& r : results) {
      if (r.failed || r.cancelled) {
        std::fprintf(stderr, "pfpl: %s: %s\n", r.name.c_str(), r.error.c_str());
        ++failed;
        continue;
      }
      reused += r.reused ? 1 : 0;
      stored_bytes += r.stream.size();
      raw_bytes += r.raw_bytes;
      audit_violations += r.audit_violations;
    }
    std::printf("stored %zu file(s) (%llu deduped): %llu -> %llu bytes "
                "(ratio %.3f)\n%s\n",
                results.size() - static_cast<std::size_t>(failed),
                static_cast<unsigned long long>(reused),
                static_cast<unsigned long long>(raw_bytes),
                static_cast<unsigned long long>(stored_bytes),
                stored_bytes ? static_cast<double>(raw_bytes) / stored_bytes : 0.0,
                pipe.stats().summary().c_str());
    if (obs::enabled())
      obs::RunReport::global().add_section("ingest", pipe.stats().json());
    if (failed) return 1;
    return audit_violations ? 3 : 0;
  }
  if (verb == "get") {
    if (positional.size() != 3) usage();
    common::Hash128 key;
    if (!common::Hash128::parse(positional[1], key))
      throw CompressionError("store: '" + positional[1] +
                             "' is not a 32-hex-digit chunk key");
    Bytes payload;
    if (!cs.get(key, payload))
      throw CompressionError("store: no chunk with key " + positional[1]);
    io::write_file(positional[2], payload.data(), payload.size());
    std::printf("%s: %zu bytes -> %s\n", positional[1].c_str(), payload.size(),
                positional[2].c_str());
    return 0;
  }
  if (positional.size() != 1) usage();
  if (verb == "ls") {
    std::printf("%-32s %-5s %-4s %-10s %12s %10s %8s\n", "key", "dtype", "eb", "eps",
                "raw", "stored", "segment");
    u64 total_payload = 0;
    for (const store::StoredChunk& e : log.entries()) {
      std::printf("%-32s %-5s %-4s %-10g %12llu %10llu %8llu\n", e.key.hex().c_str(),
                  to_string(e.meta.dtype), to_string(e.meta.eb), e.meta.eps,
                  static_cast<unsigned long long>(e.meta.raw_size),
                  static_cast<unsigned long long>(e.payload_len),
                  static_cast<unsigned long long>(e.segment));
      total_payload += e.payload_len;
    }
    std::printf("%zu entries, %llu payload bytes, %llu live + %llu dead frame bytes, "
                "generation %llu\n",
                log.entry_count(), static_cast<unsigned long long>(total_payload),
                static_cast<unsigned long long>(log.live_bytes()),
                static_cast<unsigned long long>(log.dead_bytes()),
                static_cast<unsigned long long>(log.generation()));
    return 0;
  }
  if (verb == "compact") {
    const store::SegmentStore::CompactReport rep = log.compact();
    std::printf("compacted %llu -> %llu segments, %llu -> %llu bytes "
                "(%llu reclaimed), %llu live entries\n",
                static_cast<unsigned long long>(rep.segments_before),
                static_cast<unsigned long long>(rep.segments_after),
                static_cast<unsigned long long>(rep.bytes_before),
                static_cast<unsigned long long>(rep.bytes_after),
                static_cast<unsigned long long>(rep.reclaimed_bytes),
                static_cast<unsigned long long>(rep.live_entries));
    return 0;
  }
  if (verb == "verify") {
    const store::SegmentStore::OpenReport& orep = log.open_report();
    if (orep.torn_bytes)
      std::printf("recovery: truncated %llu torn byte(s) off the active segment\n",
                  static_cast<unsigned long long>(orep.torn_bytes));
    if (orep.manifest_recovered)
      std::printf("recovery: manifest was missing/corrupt, rebuilt from scan\n");
    const store::SegmentStore::VerifyReport rep = log.verify();
    std::printf("%llu segment(s), %llu frame(s) ok, %llu corrupt, %llu bytes scanned\n",
                static_cast<unsigned long long>(rep.segments),
                static_cast<unsigned long long>(rep.frames_ok),
                static_cast<unsigned long long>(rep.corrupt_frames),
                static_cast<unsigned long long>(rep.bytes_scanned));
    std::printf("store: %s\n", rep.ok() ? "OK" : "CORRUPT");
    return rep.ok() ? 0 : 1;
  }
  usage();
}

/// Parse `--dims ZxYxX` (slowest-first, matching temporal::SessionConfig).
std::array<u32, 3> parse_stream_dims(const std::string& s) {
  unsigned z = 0, y = 0, x = 0;
  char extra;
  if (std::sscanf(s.c_str(), "%ux%ux%u%c", &z, &y, &x, &extra) != 3 || !z || !y || !x)
    throw CompressionError("invalid --dims '" + s +
                           "' (expected ZxYxX with all dims > 0, e.g. 8x64x64)");
  return {z, y, x};
}

/// Bound-check one decoded frame through the shared audit verifier
/// (obs::ErrorBoundAuditor::verify_field) — the same external judge, audit.*
/// counters, and drill-down the snapshot paths use. A violating frame prints
/// its first offending value so the failure is immediately reproducible.
std::size_t stream_audit_frame(const temporal::SessionConfig& cfg, u64 frame_index,
                               const u8* orig, const u8* recon) {
  const std::array<std::size_t, 3> dims{cfg.dims[0], cfg.dims[1], cfg.dims[2]};
  const Field field = cfg.dtype == DType::F32
                          ? Field(reinterpret_cast<const float*>(orig), dims)
                          : Field(reinterpret_cast<const double*>(orig), dims);
  std::vector<u8> recon_raw(recon, recon + cfg.frame_bytes());
  char label[32];
  std::snprintf(label, sizeof label, "frame-%06llu",
                static_cast<unsigned long long>(frame_index));
  const obs::AuditCase c = obs::ErrorBoundAuditor::verify_field(
      field, recon_raw, cfg.eb, cfg.eps, "stream", label, /*seed=*/0,
      /*compressed_bytes=*/0);
  if (c.violations && c.has_first)
    std::fprintf(stderr,
                 "pfpl stream: FIRST VIOLATION in %s: chunk=%zu index=%zu "
                 "orig=%.17g recon=%.17g err=%.3e allowed=%.3e\n",
                 label, c.first.chunk, c.first.index, c.first.original,
                 c.first.reconstructed, c.first.error, c.first.allowed);
  return c.violations;
}

void write_frame_file(const std::string& dir, u64 index, const void* p,
                      std::size_t n) {
  char name[32];
  std::snprintf(name, sizeof name, "frame-%06llu.raw",
                static_cast<unsigned long long>(index));
  io::write_file((std::filesystem::path(dir) / name).string(), p, n);
}

/// `pfpl stream pack|unpack|info` — author, expand, and inspect PFPV frame
/// streams (docs/FORMAT.md §PFPV). pack sources frames either from raw files
/// (--dims) or from an evolving suite generator (--suite), encodes locally,
/// or — with --host — pushes every frame through a pfpld temporal session
/// and appends the returned records. On session loss (idle eviction, server
/// restart, drain) the remote path reopens a session and resumes: the
/// server's fresh encoder emits a keyframe, so the stream stays decodable.
int cmd_stream(const std::vector<std::string>& positional, const Flags& fl) {
  if (positional.empty()) usage();
  const std::string& verb = positional[0];

  if (verb == "info") {
    if (positional.size() != 2) usage();
    const u32 magic = peek_magic(positional[1]);
    if (magic != temporal::kPfpvMagic) reject_magic("stream info", positional[1], magic);
    return pfpv_stats(positional[1], fl.json);
  }

  if (verb == "unpack") {
    if (positional.size() != 3) usage();
    const u32 magic = peek_magic(positional[1]);
    if (magic != temporal::kPfpvMagic)
      reject_magic("stream unpack", positional[1], magic);
    temporal::StreamReader reader(positional[1]);
    std::filesystem::create_directories(positional[2]);
    temporal::FrameDecoder dec(reader.config());
    for (std::size_t i = 0; i < reader.frame_count(); ++i) {
      const temporal::EncodedFrame f = reader.frame(i);
      const std::vector<u8>& raw = dec.decode(f);
      write_frame_file(positional[2], f.frame_index, raw.data(), raw.size());
    }
    std::printf("%s: %zu frame(s) -> %s (%zu bytes each)\n", positional[1].c_str(),
                reader.frame_count(), positional[2].c_str(),
                reader.config().frame_bytes());
    if (reader.truncated())
      std::printf("TRUNCATED source: %zu torn byte(s) were discarded at pack time "
                  "or on recovery\n",
                  reader.truncated_bytes());
    return 0;
  }

  if (verb != "pack") usage();
  if (positional.size() < 2) usage();
  const std::string& out_path = positional[1];

  // -- assemble the frame source ---------------------------------------------
  temporal::SessionConfig cfg;
  cfg.eb = fl.params.eb;
  cfg.eps = fl.params.eps;
  cfg.keyframe_interval = fl.keyframe_interval;
  cfg.exec = fl.params.exec;
  data::FrameSequence seq;            // --suite mode: owns the frames
  std::vector<std::vector<u8>> raws;  // file mode: one raw buffer per frame
  std::size_t n_frames = 0;
  if (!fl.suite.empty()) {
    if (positional.size() != 2) usage();
    data::EvolvingSpec spec;
    try {
      spec = data::find_evolving(fl.suite);
    } catch (const std::invalid_argument&) {
      std::string roster;
      for (const data::EvolvingSpec& s : data::evolving_suites()) roster += s.name + " ";
      std::fprintf(stderr, "pfpl stream pack: unknown suite '%s' (evolving suites: %s)\n",
                   fl.suite.c_str(), roster.c_str());
      return 2;
    }
    cfg.dtype = spec.dtype;
    seq = data::generate_evolving(spec, fl.values ? fl.values : (1u << 16),
                                  fl.frames ? fl.frames : 64,
                                  fl.seed ? fl.seed : 0x5D12B1E5u);
    cfg.dims = {static_cast<u32>(seq.dims[0]), static_cast<u32>(seq.dims[1]),
                static_cast<u32>(seq.dims[2])};
    n_frames = seq.frames();
  } else {
    if (positional.size() < 3) usage();
    if (fl.dims.empty())
      throw CompressionError("stream pack: --dims ZxYxX is required for raw-file "
                             "frames (or use --suite)");
    cfg.dtype = fl.dtype;
    cfg.dims = parse_stream_dims(fl.dims);
    for (std::size_t i = 2; i < positional.size(); ++i) {
      raws.push_back(io::read_file(positional[i]));
      if (raws.back().size() != cfg.frame_bytes())
        throw CompressionError("stream pack: " + positional[i] + " is " +
                               std::to_string(raws.back().size()) + " bytes, want " +
                               std::to_string(cfg.frame_bytes()) + " (dims " +
                               fl.dims + " x " + to_string(cfg.dtype) + ")");
    }
    n_frames = raws.size();
  }
  // Raw scalar bytes of frame i, whichever source is active.
  auto frame_ptr = [&](std::size_t i) -> const u8* {
    if (!raws.empty()) return raws[i].data();
    if (seq.dtype == DType::F32)
      return reinterpret_cast<const u8*>(seq.f32[i].data());
    return reinterpret_cast<const u8*>(seq.f64[i].data());
  };
  if (!fl.dump_raw.empty()) std::filesystem::create_directories(fl.dump_raw);
  if (!fl.dump_recon.empty()) std::filesystem::create_directories(fl.dump_recon);

  // -- encode (local session or remote pfpld session) ------------------------
  temporal::StreamWriter writer(out_path, cfg);
  // The decoder runs whenever we need reconstructions (audit / dump-recon);
  // it consumes exactly the records that land in the file, so what we audit
  // is what a reader will see.
  const bool want_recon = fl.audit || !fl.dump_recon.empty();
  temporal::FrameDecoder dec(cfg);
  u64 iframes = 0, pframes = 0, violations = 0, reopens = 0;
  auto account = [&](const temporal::EncodedFrame& ef, std::size_t i) {
    (ef.type == temporal::FrameType::Intra ? iframes : pframes) += 1;
    if (!fl.dump_raw.empty())
      write_frame_file(fl.dump_raw, ef.frame_index, frame_ptr(i), cfg.frame_bytes());
    if (!want_recon) return;
    const std::vector<u8>& recon = dec.decode(ef);
    if (fl.audit)
      violations += stream_audit_frame(cfg, ef.frame_index, frame_ptr(i), recon.data());
    if (!fl.dump_recon.empty())
      write_frame_file(fl.dump_recon, ef.frame_index, recon.data(), recon.size());
  };

  if (fl.host.empty()) {
    temporal::FrameEncoder enc(cfg);
    for (std::size_t i = 0; i < n_frames; ++i) {
      Field field = cfg.dtype == DType::F32
                        ? Field(reinterpret_cast<const float*>(frame_ptr(i)),
                                cfg.frame_values())
                        : Field(reinterpret_cast<const double*>(frame_ptr(i)),
                                cfg.frame_values());
      const temporal::EncodedFrame ef = enc.encode(field, i);
      writer.append(ef);
      account(ef, i);
    }
  } else {
    net::Client::Options copts;
    net::split_host_port(fl.host, copts.host, copts.port);
    if (fl.timeout_ms > 0) {
      copts.connect_timeout_ms = fl.timeout_ms;
      copts.request_timeout_ms = fl.timeout_ms;
    }
    net::Client client(copts);
    auto open_session = [&]() {
      return client.stream_open(cfg.dtype, cfg.eb, cfg.eps, cfg.dims,
                                cfg.keyframe_interval);
    };
    u64 sid = open_session();
    constexpr unsigned kMaxReopensPerFrame = 5;
    for (std::size_t i = 0; i < n_frames; ++i) {
      Bytes record;
      unsigned attempts = 0;
      for (;;) {
        try {
          record = client.stream_frame(sid, i, frame_ptr(i), cfg.frame_bytes());
          break;
        } catch (const net::RemoteError& e) {
          // BadSession (evicted / server restarted) and Draining are the two
          // recoverable refusals: a fresh session resumes at a keyframe.
          // Anything else is a real answer — propagate it.
          if (e.status() != static_cast<u16>(net::Status::BadSession) &&
              e.status() != static_cast<u16>(net::Status::Draining))
            throw;
          if (++attempts > kMaxReopensPerFrame) throw;
        } catch (const net::NetError&) {
          if (++attempts > kMaxReopensPerFrame) throw;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100u * attempts));
        try {
          sid = open_session();
          ++reopens;
          std::fprintf(stderr,
                       "pfpl stream: session lost at frame %zu; reopened as %llu "
                       "(next frame is a keyframe)\n",
                       i, static_cast<unsigned long long>(sid));
        } catch (const net::NetError&) {
          // Server still down; the next loop iteration backs off and retries.
        }
      }
      writer.append_encoded(record);
      temporal::EncodedFrame ef;
      if (!temporal::decode_frame_record(record.data(), record.size(), ef))
        throw CompressionError("stream pack: server returned an invalid PFPV "
                               "record for frame " + std::to_string(i));
      account(ef, i);
    }
    try {
      client.stream_close(sid);
    } catch (const net::NetError&) {
      // Close is best-effort: the stream on disk is already complete and the
      // server will idle-evict the session.
    }
  }
  writer.finish();

  const std::uintmax_t file_bytes = std::filesystem::file_size(out_path);
  const double raw_bytes = static_cast<double>(n_frames) *
                           static_cast<double>(cfg.frame_bytes());
  std::printf("%s: %zu frame(s) (%llu I + %llu P), dims=%ux%ux%u %s eb=%s eps=%g\n",
              out_path.c_str(), n_frames, static_cast<unsigned long long>(iframes),
              static_cast<unsigned long long>(pframes), cfg.dims[0], cfg.dims[1],
              cfg.dims[2], to_string(cfg.dtype), to_string(cfg.eb), cfg.eps);
  const std::string via = fl.host.empty()
                              ? std::string()
                              : " via " + fl.host + ", " + std::to_string(reopens) +
                                    " session reopen(s)";
  std::printf("raw=%.0f -> file=%llu bytes (ratio %.3f)%s\n", raw_bytes,
              static_cast<unsigned long long>(file_bytes),
              file_bytes ? raw_bytes / static_cast<double>(file_bytes) : 0.0,
              via.c_str());
  if (fl.audit)
    std::printf("audit: %llu violation(s) across %zu decoded frame(s)%s\n",
                static_cast<unsigned long long>(violations), n_frames,
                violations ? " (BOUND VIOLATED)" : " (bound holds)");
  return violations ? 3 : 0;
}

int run_command(int argc, char** argv) {
  if (argc < 2) usage();
  std::string mode = argv[1];
  // `audit`, `serve`, `top`, and `profile` take no positional arguments;
  // every other verb needs at least one.
  if (mode != "audit" && mode != "serve" && mode != "top" && mode != "profile" &&
      argc < 3)
    usage();
  try {
    if (mode == "pack" || mode == "unpack" || mode == "list" || mode == "stats" ||
        mode == "audit" || mode == "serve" || mode == "remote" || mode == "store" ||
        mode == "top" || mode == "profile" || mode == "cluster" || mode == "stream") {
      std::vector<std::string> positional;
      Flags fl = parse_flags(argc, argv, 2, &positional);
      if (mode == "pack") return cmd_pack(positional, fl);
      if (mode == "unpack") return cmd_unpack(positional, fl);
      if (mode == "stats") return cmd_stats(positional, fl);
      if (mode == "audit") return cmd_audit(positional, fl);
      if (mode == "serve") return cmd_serve(positional, fl);
      if (mode == "remote") return cmd_remote(positional, fl);
      if (mode == "store") return cmd_store(positional, fl);
      if (mode == "top") return cmd_top(positional, fl);
      if (mode == "profile") return cmd_profile(positional, fl);
      if (mode == "cluster") return cmd_cluster(positional, fl);
      if (mode == "stream") return cmd_stream(positional, fl);
      return cmd_list(positional);
    }
    if (mode == "info") {
      Bytes in = io::read_file(argv[2]);
      pfpl::Header h = pfpl::peek_header(in);
      std::printf("dtype=%s eb=%s eps=%g recon_param=%g values=%llu chunks=%u\n",
                  to_string(h.dtype), to_string(h.eb_type), h.eps, h.recon_param,
                  static_cast<unsigned long long>(h.value_count), h.chunk_count);
      std::printf("compressed=%zu bytes  ratio=%.3f\n", in.size(),
                  static_cast<double>(h.value_count) * dtype_size(h.dtype) /
                      static_cast<double>(in.size()));
      return 0;
    }
    if (mode == "verify") {
      if (argc < 4) usage();
      std::vector<u8> orig = io::read_file(argv[2]);
      Bytes comp = io::read_file(argv[3]);
      pfpl::Header h = pfpl::peek_header(comp);
      std::vector<u8> back = pfpl::decompress(comp);
      std::size_t bad = 0;
      double max_abs = 0, max_rel = 0, psnr = 0;
      if (h.dtype == DType::F32) {
        std::span<const float> o(reinterpret_cast<const float*>(orig.data()), orig.size() / 4);
        std::span<const float> r(reinterpret_cast<const float*>(back.data()), back.size() / 4);
        bad = metrics::count_violations(o, r, h.eps, h.eb_type);
        auto st = metrics::compute_stats(o, r);
        max_abs = st.max_abs;
        max_rel = st.max_rel;
        psnr = st.psnr;
      } else {
        std::span<const double> o(reinterpret_cast<const double*>(orig.data()), orig.size() / 8);
        std::span<const double> r(reinterpret_cast<const double*>(back.data()), back.size() / 8);
        bad = metrics::count_violations(o, r, h.eps, h.eb_type);
        auto st = metrics::compute_stats(o, r);
        max_abs = st.max_abs;
        max_rel = st.max_rel;
        psnr = st.psnr;
      }
      std::printf("eb=%s eps=%g  max_abs_err=%.6g max_rel_err=%.6g psnr=%.2f dB\n",
                  to_string(h.eb_type), h.eps, max_abs, max_rel, psnr);
      std::printf("violations: %zu %s\n", bad, bad == 0 ? "(bound holds)" : "(BOUND VIOLATED)");
      return bad == 0 ? 0 : 3;
    }
    if (argc < 4) usage();
    std::string in_path = argv[2], out_path = argv[3];
    Flags fl = parse_flags(argc, argv, 4, nullptr);
    if (mode == "c") {
      std::vector<u8> raw = io::read_file(in_path);
      Bytes out = pfpl::compress(make_field(raw, fl.dtype), fl.params);
      io::write_file(out_path, out.data(), out.size());
      std::printf("%zu -> %zu bytes (ratio %.3f)\n", raw.size(), out.size(),
                  static_cast<double>(raw.size()) / static_cast<double>(out.size()));
      return 0;
    }
    if (mode == "d") {
      Bytes in = io::read_file(in_path);
      std::vector<u8> raw = pfpl::decompress(in, fl.params.exec);
      io::write_file(out_path, raw.data(), raw.size());
      std::printf("%zu -> %zu bytes\n", in.size(), raw.size());
      return 0;
    }
    usage();
  } catch (const CompressionError& e) {
    // Truncated/corrupt streams, bad bounds, archive checksum failures:
    // report cleanly, never let the exception escape as a crash.
    std::fprintf(stderr, "pfpl: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pfpl: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ObsFlags obs_fl = strip_obs_flags(argc, argv);
  int rc = run_command(argc, argv);
  flush_obs(obs_fl);
  return rc;
}
