#include "net/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ingest/pipeline.hpp"
#include "net/poller.hpp"
#include "obs/crash.hpp"
#include "obs/event_log.hpp"
#include "obs/exposition.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/store.hpp"
#include "svc/thread_pool.hpp"
#include "temporal/pfpv.hpp"
#include "temporal/temporal.hpp"

namespace repro::net {
namespace {

/// net.* metric handles, resolved once (obs/metrics.hpp pattern). These are
/// the obs-gated view; Server::Stats atomics below are always live.
struct NetMetrics {
  obs::Counter& connections_accepted;
  obs::Counter& frames_rx;
  obs::Counter& frames_tx;
  obs::Counter& bytes_rx;
  obs::Counter& bytes_tx;
  obs::Counter& requests;
  obs::Counter& errors;
  obs::Counter& store_hits;
  obs::Counter& store_misses;
  obs::Counter& slow_requests;
  obs::Counter& metrics_scrapes;
  obs::Counter& accept_overloads;
  obs::Gauge& connections;
  obs::Gauge& inflight_bytes;
  obs::Histogram& request_us;
  obs::Histogram& compress_us;
  obs::Histogram& decompress_us;
  static NetMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static NetMetrics m{r.counter("net.connections_accepted"),
                        r.counter("net.frames_rx"),
                        r.counter("net.frames_tx"),
                        r.counter("net.bytes_rx"),
                        r.counter("net.bytes_tx"),
                        r.counter("net.requests"),
                        r.counter("net.errors"),
                        r.counter("net.store_hits"),
                        r.counter("net.store_misses"),
                        r.counter("net.slow_requests"),
                        r.counter("net.metrics_scrapes"),
                        r.counter("net.accept_overloads"),
                        r.gauge("net.connections"),
                        r.gauge("net.inflight_bytes"),
                        r.histogram("net.request_us"),
                        r.histogram("net.compress_us"),
                        r.histogram("net.decompress_us")};
    return m;
  }
};

/// Server-side cluster.node.* handles (the client-side cluster.* counters
/// live in cluster/client.cpp).
struct ClusterMetrics {
  obs::Counter& wrong_shard;
  obs::Counter& map_exchanges;
  obs::Counter& map_adopted;
  obs::Counter& health_checks;
  static ClusterMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static ClusterMetrics m{r.counter("cluster.node.wrong_shard"),
                            r.counter("cluster.node.map_exchanges"),
                            r.counter("cluster.node.map_adopted"),
                            r.counter("cluster.node.health_checks")};
    return m;
  }
};

/// Server-side temporal.session.* handles (the per-frame temporal.* counters
/// live in temporal/temporal.cpp).
struct TemporalMetrics {
  obs::Counter& sessions_opened;
  obs::Counter& sessions_closed;
  obs::Counter& sessions_evicted;
  obs::Counter& stream_frames;
  obs::Gauge& sessions;
  static TemporalMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static TemporalMetrics m{r.counter("temporal.sessions_opened"),
                             r.counter("temporal.sessions_closed"),
                             r.counter("temporal.sessions_evicted"),
                             r.counter("temporal.stream_frames"),
                             r.gauge("temporal.sessions")};
    return m;
  }
};

/// Thrown by the worker-side ownership check; turned into a typed
/// Status::WrongShard error frame (never retried on the same node — the
/// client refetches the shard map and re-routes).
struct WrongShardError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

u64 rd_le64(const u8* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
  return v;
}

u32 rd_le32(const u8* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(p[i]) << (8 * i);
  return v;
}

/// One temporal frame session. The encoder is stateful (closed-loop
/// reference), so frames of a session are serialized by `m`; distinct
/// sessions encode concurrently on the pool. The map entry is a shared_ptr:
/// eviction/drain can erase it while a worker still holds the object.
struct StreamSession {
  u64 id = 0;
  temporal::SessionConfig cfg;
  temporal::FrameEncoder enc;
  std::mutex m;                     ///< serializes encode + expected_index
  /// Next in-order client frame index. The *first* frame of a session may
  /// carry any index: a client resuming after a reconnect (its old session
  /// was evicted or died with the server) continues its own numbering, and
  /// the fresh encoder answers it with a keyframe regardless. From then on
  /// indices must be strictly sequential.
  u64 expected_index = 0;
  bool started = false;             ///< false until the first frame lands
  std::atomic<u64> last_active_ns{0};
  std::atomic<u64> frames{0}, iframes{0}, pframes{0};
  u64 created_ns = 0;

  StreamSession(u64 i, const temporal::SessionConfig& c, u64 now)
      : id(i), cfg(c), enc(c), last_active_ns(now), created_ns(now) {}
};

u64 now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

/// Test-only slowdown: PFPL_NET_TEST_SLOW_US sleeps inside every worker-side
/// request, widening the in-flight window so the drain and backpressure
/// tests are deterministic. Read fresh each time (test-only path; the hot
/// path never reaches it in real runs). Unset in production.
void test_slowdown() {
  const char* e = std::getenv("PFPL_NET_TEST_SLOW_US");
  if (e && e[0] != '\0') {
    const long us = std::atol(e);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

/// Test-only crash: PFPL_NET_TEST_CRASH_AFTER=N raises SIGSEGV inside the
/// worker handling the Nth COMPRESS/DECOMPRESS request — the CI induced-crash
/// smoke uses this to exercise the crash-report path on a serving pfpld.
/// Unset in production; the counter only exists when the env var is set.
void test_crash() {
  static const char* e = std::getenv("PFPL_NET_TEST_CRASH_AFTER");
  if (!e || e[0] == '\0') return;
  static std::atomic<long> seen{0};
  const long n = std::atol(e);
  if (n > 0 && seen.fetch_add(1, std::memory_order_relaxed) + 1 >= n)
    ::raise(SIGSEGV);
}

struct Connection {
  u64 id = 0;
  Socket sock;
  FrameParser parser;
  std::deque<Bytes> outq;       ///< response buffers awaiting the socket
  std::size_t out_off = 0;      ///< sent prefix of outq.front()
  std::deque<Frame> deferred;   ///< parsed requests parked by backpressure
  std::size_t inflight = 0;     ///< dispatched-but-unanswered payload bytes
  bool no_read = false;         ///< peer half-closed or framing poisoned
  Connection(u64 i, Socket s, std::size_t max_payload)
      : id(i), sock(std::move(s)), parser(max_payload) {}
};

/// A worker-finished response headed back to the event loop.
struct Completion {
  u64 conn_id = 0;
  Bytes frame;                ///< encoded response (success or error)
  std::size_t release = 0;    ///< in-flight payload bytes to give back
  u64 t0_ns = 0;              ///< dispatch timestamp
  u64 work_start_ns = 0;      ///< worker picked the task up (queue-wait end)
  u64 work_ns = 0;            ///< compute time inside the worker
  u64 request_id = 0;
  u8 op = 0;                  ///< request op (for per-op latency histograms)
  u8 dtype = 0;
  bool is_error = false;
};

/// One entry of the slow-request ring: everything needed to line a server
/// observation up with the client's error text and the request's trace spans.
struct SlowRequest {
  u64 request_id = 0;
  u64 conn_id = 0;
  u8 op = 0;
  u8 dtype = 0;
  u64 payload_bytes = 0;
  u64 total_us = 0;  ///< dispatch -> completion processed on the loop
  u64 wait_us = 0;   ///< dispatch -> worker start (pool queue + scheduling)
  u64 work_us = 0;   ///< worker compute time
};

/// A connection on the plain-HTTP metrics listener. One request per
/// connection (Connection: close); the whole exchange rides the poll loop.
struct HttpConn {
  Socket sock;
  std::string in;            ///< request bytes until the header terminator
  std::string out;           ///< rendered response
  std::size_t out_off = 0;
  bool no_read = false;
  explicit HttpConn(Socket s) : sock(std::move(s)) {}
};

}  // namespace

struct Server::Impl {
  Options opts;
  Socket listen;
  Socket mlisten;  ///< optional HTTP /metrics listener
  u16 metrics_port_bound = 0;
  int wake_r = -1, wake_w = -1;
  std::unique_ptr<svc::ThreadPool> pool;

  std::map<u64, std::unique_ptr<Connection>> conns;
  std::map<u64, std::unique_ptr<HttpConn>> http_conns;
  u64 next_conn_id = 1;
  u64 next_http_id = 1;
  bool draining = false;
  u64 drain_deadline_ns = 0;
  u64 start_ns = now_ns();

  /// Readiness backend, alive only while run() is on the loop thread.
  std::unique_ptr<Poller> poller;
  /// Which backend run() actually got (atomic: stats_json readers race the
  /// loop thread that creates the Poller).
  std::atomic<bool> epoll_active{false};
  /// EMFILE headroom: one fd held in reserve so an exhausted server can
  /// still accept-and-close the pending connection instead of leaving it
  /// dangling in the backlog (see shed_accept()).
  int reserve_fd = -1;

  /// Cluster identity. `map` null = not clustered. Written on the loop
  /// thread (SHARDMAP adoption) or via set_cluster(); read by workers as an
  /// immutable snapshot, so the mutex only covers the pointer swap.
  mutable std::mutex map_m;
  std::shared_ptr<const cluster::ShardMap> map;
  int self_index = -1;
  std::string node_id;

  std::atomic<bool> stop_requested{false};
  std::mutex comp_m;
  std::vector<Completion> completions;

  /// Temporal frame sessions. The mutex covers the map; per-session state is
  /// guarded by each session's own lock (workers encode under it).
  mutable std::mutex sess_m;
  std::map<u64, std::shared_ptr<StreamSession>> sessions;
  u64 next_session_id = 1;
  u64 last_session_sweep_ns = 0;

  /// Slow-request ring, sorted by total_us descending, capped at
  /// opts.slow_capacity. Written on the loop thread; the mutex covers
  /// external stats_json()/metrics_json() readers.
  mutable std::mutex slow_m;
  std::vector<SlowRequest> slow;

  // Always-live service counters (the STATS op's source of truth).
  struct {
    std::atomic<u64> connections_accepted{0}, connections_current{0};
    std::atomic<u64> frames_rx{0}, frames_tx{0}, bytes_rx{0}, bytes_tx{0};
    std::atomic<u64> requests_compress{0}, requests_decompress{0}, requests_other{0};
    std::atomic<u64> errors{0}, store_hits{0}, store_misses{0};
    std::atomic<u64> inflight_bytes{0}, peak_inflight_bytes{0};
    std::atomic<u64> slow_requests{0}, metrics_scrapes{0};
    std::atomic<u64> accept_overloads{0};
    std::atomic<u64> wrong_shard{0}, map_exchanges{0}, map_adopted{0}, health_checks{0};
    std::atomic<u64> sessions_opened{0}, sessions_closed{0}, sessions_evicted{0};
    std::atomic<u64> stream_frames{0};
    std::atomic<bool> draining{false};
  } st;

  explicit Impl(const Options& o) : opts(o) {
    listen = tcp_listen(o.bind_host, o.port);
    if (o.metrics_port >= 0) {
      mlisten = tcp_listen(o.bind_host, static_cast<u16>(o.metrics_port));
      metrics_port_bound = local_port(mlisten);
    }
    int fds[2];
    if (::pipe(fds) != 0) throw NetError("net: pipe: " + std::string(std::strerror(errno)));
    wake_r = fds[0];
    wake_w = fds[1];
    set_nonblocking(wake_r, true);
    set_nonblocking(wake_w, true);
    reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    pool = std::make_unique<svc::ThreadPool>(o.threads, o.queue_capacity);
    if (!o.shard_map.empty()) install_map(o.shard_map, o.node_id);
  }

  ~Impl() {
    // Join the workers BEFORE the wake pipe closes — a late completion's
    // wake() must hit our pipe, not whatever fd number got recycled.
    pool.reset();
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0) ::close(wake_w);
    if (reserve_fd >= 0) ::close(reserve_fd);
  }

  // -- cluster membership ---------------------------------------------------

  /// Everything a worker needs to answer the ownership question, captured
  /// atomically (map pointer + the node's index and id under that map).
  struct ClusterView {
    std::shared_ptr<const cluster::ShardMap> map;
    int self = -1;
    std::string node_id;
  };

  ClusterView cluster_view() const {
    std::lock_guard<std::mutex> lk(map_m);
    return ClusterView{map, self_index, node_id};
  }

  /// Adopt `m` as this node's shard map. An empty node-id hint resolves by
  /// matching the bound port against the map (the common single-host case);
  /// throws NetError when nothing or more than one node matches.
  void install_map(const cluster::ShardMap& m, const std::string& node_id_hint) {
    std::string nid = node_id_hint;
    if (nid.empty()) {
      const u16 p = local_port(listen);
      int match = -1;
      for (std::size_t i = 0; i < m.nodes().size(); ++i) {
        if (m.nodes()[i].port != p) continue;
        if (match >= 0)
          throw NetError("net: several shard-map nodes listen on port " +
                         std::to_string(p) + "; pass an explicit node id");
        match = static_cast<int>(i);
      }
      if (match < 0)
        throw NetError("net: no shard-map node listens on port " + std::to_string(p) +
                       "; pass an explicit node id");
      nid = m.nodes()[static_cast<std::size_t>(match)].id;
    } else if (m.find_node(nid) < 0) {
      throw NetError("net: node id '" + nid + "' is not in the shard map");
    }
    std::lock_guard<std::mutex> lk(map_m);
    map = std::make_shared<cluster::ShardMap>(m);
    node_id = nid;
    self_index = map->find_node(nid);
  }

  void wake() {
    const char b = 1;
    // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
    [[maybe_unused]] ssize_t rc = ::write(wake_w, &b, 1);
  }

  Stats snapshot() const {
    Stats out;
    out.connections_accepted = st.connections_accepted.load(std::memory_order_relaxed);
    out.connections_current = st.connections_current.load(std::memory_order_relaxed);
    out.frames_rx = st.frames_rx.load(std::memory_order_relaxed);
    out.frames_tx = st.frames_tx.load(std::memory_order_relaxed);
    out.bytes_rx = st.bytes_rx.load(std::memory_order_relaxed);
    out.bytes_tx = st.bytes_tx.load(std::memory_order_relaxed);
    out.requests_compress = st.requests_compress.load(std::memory_order_relaxed);
    out.requests_decompress = st.requests_decompress.load(std::memory_order_relaxed);
    out.requests_other = st.requests_other.load(std::memory_order_relaxed);
    out.errors = st.errors.load(std::memory_order_relaxed);
    out.store_hits = st.store_hits.load(std::memory_order_relaxed);
    out.store_misses = st.store_misses.load(std::memory_order_relaxed);
    out.inflight_bytes = st.inflight_bytes.load(std::memory_order_relaxed);
    out.peak_inflight_bytes = st.peak_inflight_bytes.load(std::memory_order_relaxed);
    out.slow_requests = st.slow_requests.load(std::memory_order_relaxed);
    out.metrics_scrapes = st.metrics_scrapes.load(std::memory_order_relaxed);
    out.accept_overloads = st.accept_overloads.load(std::memory_order_relaxed);
    out.wrong_shard = st.wrong_shard.load(std::memory_order_relaxed);
    out.map_exchanges = st.map_exchanges.load(std::memory_order_relaxed);
    out.map_adopted = st.map_adopted.load(std::memory_order_relaxed);
    out.health_checks = st.health_checks.load(std::memory_order_relaxed);
    out.sessions_opened = st.sessions_opened.load(std::memory_order_relaxed);
    out.sessions_closed = st.sessions_closed.load(std::memory_order_relaxed);
    out.sessions_evicted = st.sessions_evicted.load(std::memory_order_relaxed);
    out.stream_frames = st.stream_frames.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(sess_m);
      out.sessions_current = sessions.size();
    }
    out.draining = st.draining.load(std::memory_order_relaxed);
    return out;
  }

  // -- temporal sessions ----------------------------------------------------

  std::shared_ptr<StreamSession> find_session(u64 sid) const {
    std::lock_guard<std::mutex> lk(sess_m);
    auto it = sessions.find(sid);
    return it == sessions.end() ? nullptr : it->second;
  }

  void note_sessions_gauge() {
    std::size_t n;
    {
      std::lock_guard<std::mutex> lk(sess_m);
      n = sessions.size();
    }
    TemporalMetrics::get().sessions.set(static_cast<long long>(n));
  }

  /// Evict sessions idle past opts.session_idle_ms (loop thread, time-gated
  /// to one sweep per ~500 ms).
  void evict_idle_sessions() {
    if (opts.session_idle_ms <= 0) return;
    const u64 now = now_ns();
    if (now - last_session_sweep_ns < 500'000'000ull) return;
    last_session_sweep_ns = now;
    const u64 limit = static_cast<u64>(opts.session_idle_ms) * 1'000'000ull;
    std::size_t evicted = 0;
    {
      std::lock_guard<std::mutex> lk(sess_m);
      for (auto it = sessions.begin(); it != sessions.end();) {
        const u64 last = it->second->last_active_ns.load(std::memory_order_relaxed);
        if (now - last > limit) {
          it = sessions.erase(it);
          ++evicted;
        } else {
          ++it;
        }
      }
    }
    if (evicted) {
      st.sessions_evicted.fetch_add(evicted, std::memory_order_relaxed);
      TemporalMetrics::get().sessions_evicted.add(evicted);
      note_sessions_gauge();
    }
  }

  /// Drain: every live session dies (counted as evicted); later frames get
  /// BadSession, new opens get Draining.
  void kill_all_sessions() {
    std::size_t killed = 0;
    {
      std::lock_guard<std::mutex> lk(sess_m);
      killed = sessions.size();
      sessions.clear();
    }
    if (killed) {
      st.sessions_evicted.fetch_add(killed, std::memory_order_relaxed);
      TemporalMetrics::get().sessions_evicted.add(killed);
      note_sessions_gauge();
    }
  }

  /// Per-session STATS rows (id, frame counts, age/idle).
  std::string sessions_json() const {
    std::vector<std::shared_ptr<StreamSession>> snap;
    {
      std::lock_guard<std::mutex> lk(sess_m);
      snap.reserve(sessions.size());
      for (const auto& [id, s] : sessions) snap.push_back(s);
    }
    const u64 now = now_ns();
    obs::JsonWriter w;
    w.begin_array();
    for (const auto& s : snap) {
      w.begin_object();
      w.kv("id", static_cast<unsigned long long>(s->id));
      w.kv("dtype", repro::to_string(s->cfg.dtype));
      w.kv("eb", repro::to_string(s->cfg.eb));
      w.kv("eps", s->cfg.eps);
      w.kv("frame_values", static_cast<unsigned long long>(s->cfg.frame_values()));
      w.kv("keyframe_interval",
           static_cast<unsigned long long>(s->cfg.keyframe_interval));
      w.kv("frames", static_cast<unsigned long long>(
                         s->frames.load(std::memory_order_relaxed)));
      w.kv("iframes", static_cast<unsigned long long>(
                          s->iframes.load(std::memory_order_relaxed)));
      w.kv("pframes", static_cast<unsigned long long>(
                          s->pframes.load(std::memory_order_relaxed)));
      w.kv("age_s", static_cast<double>(now - s->created_ns) / 1e9);
      w.kv("idle_s",
           static_cast<double>(now - s->last_active_ns.load(std::memory_order_relaxed)) /
               1e9);
      w.end_object();
    }
    w.end_array();
    return w.take();
  }

  std::string stats_json() const {
    const Stats s = snapshot();
    obs::JsonWriter w;
    w.begin_object();
    w.kv("service", "pfpld");
    w.kv("protocol", "PFPN/1");
    w.kv("uptime_s", static_cast<double>(now_ns() - start_ns) / 1e9);
    w.kv("threads", pool->worker_count());
    w.kv("exec", pfpl::to_string(opts.exec));
    w.kv("max_inflight_bytes",
         static_cast<unsigned long long>(opts.max_inflight_bytes));
    w.kv("max_frame_payload",
         static_cast<unsigned long long>(opts.max_frame_payload));
    w.kv("draining", s.draining);
    w.kv("connections_accepted", static_cast<unsigned long long>(s.connections_accepted));
    w.kv("connections_current", static_cast<unsigned long long>(s.connections_current));
    w.kv("frames_rx", static_cast<unsigned long long>(s.frames_rx));
    w.kv("frames_tx", static_cast<unsigned long long>(s.frames_tx));
    w.kv("bytes_rx", static_cast<unsigned long long>(s.bytes_rx));
    w.kv("bytes_tx", static_cast<unsigned long long>(s.bytes_tx));
    w.kv("requests_compress", static_cast<unsigned long long>(s.requests_compress));
    w.kv("requests_decompress", static_cast<unsigned long long>(s.requests_decompress));
    w.kv("requests_other", static_cast<unsigned long long>(s.requests_other));
    w.kv("errors", static_cast<unsigned long long>(s.errors));
    w.kv("inflight_bytes", static_cast<unsigned long long>(s.inflight_bytes));
    w.kv("peak_inflight_bytes", static_cast<unsigned long long>(s.peak_inflight_bytes));
    w.kv("metrics_scrapes", static_cast<unsigned long long>(s.metrics_scrapes));
    w.kv("accept_overloads", static_cast<unsigned long long>(s.accept_overloads));
    w.kv("event_backend",
         epoll_active.load(std::memory_order_relaxed) ? "epoll" : "poll");
    if (opts.max_conns)
      w.kv("max_conns", static_cast<unsigned long long>(opts.max_conns));
    w.kv("slow_ms", opts.slow_ms);
    w.kv("slow_requests_captured", static_cast<unsigned long long>(s.slow_requests));
    w.key("slow_requests").raw(slow_json());
    if (opts.store) {
      w.kv("store_hits", static_cast<unsigned long long>(s.store_hits));
      w.kv("store_misses", static_cast<unsigned long long>(s.store_misses));
      w.key("store").raw(opts.store->stats_json());
    }
    w.key("sessions");
    w.begin_object();
    w.kv("current", static_cast<unsigned long long>(s.sessions_current));
    w.kv("opened", static_cast<unsigned long long>(s.sessions_opened));
    w.kv("closed", static_cast<unsigned long long>(s.sessions_closed));
    w.kv("evicted", static_cast<unsigned long long>(s.sessions_evicted));
    w.kv("stream_frames", static_cast<unsigned long long>(s.stream_frames));
    w.kv("max_sessions", static_cast<unsigned long long>(opts.max_sessions));
    w.kv("session_idle_ms", opts.session_idle_ms);
    w.key("rows").raw(sessions_json());
    w.end_object();
    const ClusterView cv = cluster_view();
    if (cv.map) {
      w.key("cluster");
      w.begin_object();
      w.kv("cluster_id", cv.map->cluster_id());
      w.kv("node_id", cv.node_id);
      w.kv("epoch", static_cast<unsigned long long>(cv.map->epoch()));
      w.kv("nodes", static_cast<unsigned long long>(cv.map->size()));
      w.kv("replicas", static_cast<unsigned long long>(cv.map->replicas()));
      w.kv("vnodes", static_cast<unsigned long long>(cv.map->vnodes()));
      w.kv("self_index", cv.self);
      w.kv("wrong_shard", static_cast<unsigned long long>(s.wrong_shard));
      w.kv("map_exchanges", static_cast<unsigned long long>(s.map_exchanges));
      w.kv("map_adopted", static_cast<unsigned long long>(s.map_adopted));
      w.kv("health_checks", static_cast<unsigned long long>(s.health_checks));
      w.end_object();
    }
    w.end_object();
    return w.take();
  }

  /// The HEALTH-op payload: a liveness + load snapshot small enough for a
  /// failover decision on every request. Served even when not clustered
  /// (cluster fields are empty/zero) so it doubles as a plain probe.
  std::string health_json() const {
    const Stats s = snapshot();
    const ClusterView cv = cluster_view();
    obs::JsonWriter w;
    w.begin_object();
    w.kv("node_id", cv.node_id);
    w.kv("cluster_id", cv.map ? cv.map->cluster_id() : "");
    w.kv("epoch", static_cast<unsigned long long>(cv.map ? cv.map->epoch() : 0));
    w.kv("draining", s.draining);
    w.kv("uptime_s", static_cast<double>(now_ns() - start_ns) / 1e9);
    w.kv("connections_current", static_cast<unsigned long long>(s.connections_current));
    w.kv("inflight_bytes", static_cast<unsigned long long>(s.inflight_bytes));
    w.kv("requests",
         static_cast<unsigned long long>(s.requests_compress + s.requests_decompress));
    w.kv("errors", static_cast<unsigned long long>(s.errors));
    w.end_object();
    return w.take();
  }

  /// The slow-request ring as a JSON array, slowest first.
  std::string slow_json() const {
    std::lock_guard<std::mutex> lk(slow_m);
    obs::JsonWriter w;
    w.begin_array();
    for (const SlowRequest& s : slow) {
      w.begin_object();
      w.kv("request_id", static_cast<unsigned long long>(s.request_id));
      w.kv("conn", static_cast<unsigned long long>(s.conn_id));
      w.kv("op", to_string(static_cast<Op>(s.op)));
      w.kv("dtype", static_cast<unsigned long long>(s.dtype));
      w.kv("payload_bytes", static_cast<unsigned long long>(s.payload_bytes));
      w.kv("total_us", static_cast<unsigned long long>(s.total_us));
      w.kv("wait_us", static_cast<unsigned long long>(s.wait_us));
      w.kv("work_us", static_cast<unsigned long long>(s.work_us));
      w.end_object();
    }
    w.end_array();
    return w.take();
  }

  /// The METRICS-op JSON document: registry + live stats + slow ring.
  std::string metrics_doc() const {
    const std::string extra =
        "\"stats\":" + stats_json() + ",\"slow_requests\":" + slow_json();
    return obs::metrics_json_doc(extra);
  }

  /// Loop-thread only (process_completions): admit a finished request to the
  /// slow ring if it cleared the threshold, and log it through the EventLog.
  void note_slow(const Completion& comp, u64 total_us) {
    if (opts.slow_ms <= 0 ||
        total_us < static_cast<u64>(opts.slow_ms) * 1000)
      return;
    SlowRequest s;
    s.request_id = comp.request_id;
    s.conn_id = comp.conn_id;
    s.op = comp.op;
    s.dtype = comp.dtype;
    s.payload_bytes = comp.release;
    s.total_us = total_us;
    // work_start can only postdate t0 (same steady clock, same process);
    // guard anyway so a zero work_start (error path) cannot wrap.
    s.wait_us = comp.work_start_ns >= comp.t0_ns
                    ? (comp.work_start_ns - comp.t0_ns) / 1000
                    : 0;
    s.work_us = comp.work_ns / 1000;
    st.slow_requests.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().slow_requests.add(1);
    {
      std::lock_guard<std::mutex> lk(slow_m);
      auto pos = std::lower_bound(
          slow.begin(), slow.end(), s,
          [](const SlowRequest& a, const SlowRequest& b) {
            return a.total_us > b.total_us;  // descending
          });
      if (pos == slow.end() && slow.size() >= opts.slow_capacity) {
        // Slower entries already fill the ring.
      } else {
        slow.insert(pos, s);
        if (slow.size() > opts.slow_capacity) slow.pop_back();
      }
    }
    obs::EventLog& log = obs::EventLog::global();
    if (log.would_log(obs::LogLevel::Warn)) {
      obs::JsonWriter w;
      w.begin_object();
      w.kv("request_id", static_cast<unsigned long long>(s.request_id));
      w.kv("conn", static_cast<unsigned long long>(s.conn_id));
      w.kv("op", to_string(static_cast<Op>(s.op)));
      w.kv("dtype", static_cast<unsigned long long>(s.dtype));
      w.kv("payload_bytes", static_cast<unsigned long long>(s.payload_bytes));
      w.kv("total_us", static_cast<unsigned long long>(s.total_us));
      w.kv("wait_us", static_cast<unsigned long long>(s.wait_us));
      w.kv("work_us", static_cast<unsigned long long>(s.work_us));
      w.end_object();
      log.emit(obs::LogLevel::Warn, "slow_request", w.take());
    }
  }

  /// Per-request store outcome, from worker threads (atomics only).
  void note_store_lookup(const store::ChunkStore* cs, bool hit) {
    if (!cs) return;
    NetMetrics& m = NetMetrics::get();
    if (hit) {
      st.store_hits.fetch_add(1, std::memory_order_relaxed);
      m.store_hits.add(1);
    } else {
      st.store_misses.fetch_add(1, std::memory_order_relaxed);
      m.store_misses.add(1);
    }
  }

  // -- in-flight accounting ------------------------------------------------

  void inflight_add(Connection& c, std::size_t n) {
    c.inflight += n;
    const u64 total = st.inflight_bytes.fetch_add(n, std::memory_order_relaxed) + n;
    u64 peak = st.peak_inflight_bytes.load(std::memory_order_relaxed);
    while (total > peak &&
           !st.peak_inflight_bytes.compare_exchange_weak(peak, total,
                                                         std::memory_order_relaxed)) {
    }
    NetMetrics::get().inflight_bytes.set(static_cast<long long>(total));
  }

  void inflight_release(Connection& c, std::size_t n) {
    c.inflight -= std::min(n, c.inflight);
    const u64 total = st.inflight_bytes.fetch_sub(n, std::memory_order_relaxed) - n;
    NetMetrics::get().inflight_bytes.set(static_cast<long long>(total));
  }

  bool paused(const Connection& c) const {
    return !c.deferred.empty() || c.inflight >= opts.max_inflight_bytes;
  }

  // -- responses -----------------------------------------------------------

  void queue_response(Connection& c, Bytes frame, bool is_error) {
    st.frames_tx.fetch_add(1, std::memory_order_relaxed);
    if (is_error) st.errors.fetch_add(1, std::memory_order_relaxed);
    NetMetrics& m = NetMetrics::get();
    m.frames_tx.add(1);
    if (is_error) m.errors.add(1);
    c.outq.push_back(std::move(frame));
  }

  void queue_error(Connection& c, u64 request_id, u8 op, Status stc,
                   const std::string& text) {
    queue_response(c, encode_error_frame(request_id, op, stc, text), /*is_error=*/true);
  }

  /// Flush as much of the out-queue as the socket accepts right now.
  void flush_out(Connection& c) {
    while (!c.outq.empty()) {
      Bytes& front = c.outq.front();
      while (c.out_off < front.size()) {
        const ssize_t rc = ::send(c.sock.fd(), front.data() + c.out_off,
                                  front.size() - c.out_off, MSG_NOSIGNAL);
        if (rc > 0) {
          c.out_off += static_cast<std::size_t>(rc);
          st.bytes_tx.fetch_add(static_cast<u64>(rc), std::memory_order_relaxed);
          NetMetrics::get().bytes_tx.add(static_cast<u64>(rc));
          continue;
        }
        if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
        if (rc < 0 && errno == EINTR) continue;
        // Peer vanished: drop the queue; the close logic reaps the conn.
        c.outq.clear();
        c.out_off = 0;
        c.no_read = true;
        return;
      }
      c.outq.pop_front();
      c.out_off = 0;
    }
  }

  // -- request handling ----------------------------------------------------

  void dispatch(Connection& c, Frame&& f) {
    if (f.header.base_op() == static_cast<u8>(Op::StreamFrame)) {
      // Deferred frames come back through dispatch() (pump's un-park path),
      // so the stream branch lives here, not in handle_frame.
      dispatch_stream(c, std::move(f));
      return;
    }
    const FrameHeader h = f.header;
    const std::size_t n = f.payload.size();
    inflight_add(c, n);
    NetMetrics::get().requests.add(1);
    auto payload = std::make_shared<Bytes>(std::move(f.payload));
    const pfpl::Executor exec = opts.exec;
    store::ChunkStore* cs = opts.store.get();  // opts outlives the pool
    const u64 conn_id = c.id;
    const u64 t0 = now_ns();
    ClusterView cv = cluster_view();  // immutable snapshot for the worker
    Impl* self = this;
    // The submit below runs under handle_frame's TraceContext scope, so the
    // pool captures h.request_id into the task and re-installs it around
    // execution — every span the worker opens is tagged with the request.
    pool->submit([self, payload, h, exec, cs, conn_id, t0, n, cv = std::move(cv)] {
      Completion comp;
      comp.conn_id = conn_id;
      comp.release = n;
      comp.t0_ns = t0;
      comp.work_start_ns = now_ns();
      comp.request_id = h.request_id;
      comp.op = h.base_op();
      comp.dtype = h.dtype;
      // Belt and braces: tag the worker explicitly too, so the request
      // scoping survives even if the task ran on a path that did not thread
      // the pool's captured context (e.g. obs was flipped on mid-request).
      obs::TraceContext::Scope trace_ctx(h.request_id);
      obs::ScopedSpan work_span(h.base_op() == static_cast<u8>(Op::Compress)
                                    ? "net.work.compress"
                                    : "net.work.decompress");
      try {
        test_slowdown();
        test_crash();
        if (cv.map) {
          // Cluster mode: answer only for keys this node owns under its
          // current map epoch. Refusals are cheap (one hash over the
          // payload) and typed, so a stale client can recover by
          // refetching the map instead of polluting the wrong shard.
          const common::Hash128 key =
              h.base_op() == static_cast<u8>(Op::Compress)
                  ? store::compress_key(payload->data(), payload->size(),
                                        static_cast<DType>(h.dtype),
                                        static_cast<EbType>(h.eb_type), h.eps)
                  : store::decompress_key(payload->data(), payload->size());
          if (!cv.map->owns(key, cv.self)) {
            self->st.wrong_shard.fetch_add(1, std::memory_order_relaxed);
            ClusterMetrics::get().wrong_shard.add(1);
            throw WrongShardError("key " + key.hex() + " is not owned by node '" +
                                  cv.node_id + "' at shard-map epoch " +
                                  std::to_string(cv.map->epoch()));
          }
        }
        if (h.base_op() == static_cast<u8>(Op::Compress)) {
          // COMPRESS with --store goes through the ingest dedup probe: a
          // duplicate payload answers straight from the store (byte-identical
          // by key construction) and skips the compressor entirely.
          Bytes stream;
          common::Hash128 key{};
          bool hit = false;
          if (cs) {
            const ingest::ProbeResult pr = ingest::probe_compress(
                *cs, payload->data(), payload->size(), static_cast<DType>(h.dtype),
                static_cast<EbType>(h.eb_type), h.eps, stream);
            key = pr.key;
            hit = pr.hit;
          }
          if (!hit) {
            Field field = h.dtype == static_cast<u8>(DType::F64)
                              ? Field(reinterpret_cast<const double*>(payload->data()),
                                      payload->size() / 8)
                              : Field(reinterpret_cast<const float*>(payload->data()),
                                      payload->size() / 4);
            pfpl::Params params{h.eps, static_cast<EbType>(h.eb_type), exec};
            stream = pfpl::compress(field, params);
            if (cs)
              cs->put(key, stream,
                      store::ChunkMeta{static_cast<DType>(h.dtype),
                                       static_cast<EbType>(h.eb_type), h.eps,
                                       payload->size()});
          }
          self->note_store_lookup(cs, hit);
          FrameHeader rh;
          rh.op = h.op | kResponseBit;
          rh.request_id = h.request_id;
          rh.dtype = h.dtype;
          rh.eb_type = h.eb_type;
          rh.eps = h.eps;
          comp.frame = encode_frame(rh, stream);
        } else {
          pfpl::Header sh = pfpl::peek_header(*payload);
          const common::Hash128 key =
              cs ? store::decompress_key(payload->data(), payload->size())
                 : common::Hash128{};
          Bytes raw;
          const bool hit = cs && cs->get(key, raw);
          if (!hit) {
            raw = pfpl::decompress(*payload, exec);
            if (cs)
              cs->put(key, raw,
                      store::ChunkMeta{sh.dtype, sh.eb_type, sh.eps, raw.size()});
          }
          self->note_store_lookup(cs, hit);
          FrameHeader rh;
          rh.op = h.op | kResponseBit;
          rh.request_id = h.request_id;
          rh.dtype = static_cast<u8>(sh.dtype);
          rh.eb_type = static_cast<u8>(sh.eb_type);
          rh.eps = sh.eps;
          comp.frame = encode_frame(rh, raw.data(), raw.size());
        }
      } catch (const WrongShardError& e) {
        comp.frame =
            encode_error_frame(h.request_id, h.op, Status::WrongShard, e.what());
        comp.is_error = true;
      } catch (const std::exception& e) {
        comp.frame = encode_error_frame(h.request_id, h.op, Status::CompressFailed,
                                        e.what());
        comp.is_error = true;
      }
      comp.work_ns = now_ns() - comp.work_start_ns;
      {
        std::lock_guard<std::mutex> lk(self->comp_m);
        self->completions.push_back(std::move(comp));
      }
      self->wake();
    });
  }

  /// STREAM_FRAME: resolve the session on the loop thread (it may have been
  /// idle-evicted while the frame was parked), then encode on the pool.
  /// Frames of one session serialize on the session mutex; distinct sessions
  /// encode concurrently.
  void dispatch_stream(Connection& c, Frame&& f) {
    const FrameHeader h = f.header;
    const std::size_t n = f.payload.size();
    const u64 sid = rd_le64(f.payload.data());
    std::shared_ptr<StreamSession> sess = find_session(sid);
    if (!sess) {
      queue_error(c, h.request_id, h.op, Status::BadSession,
                  "unknown session " + std::to_string(sid) +
                      " (evicted or never opened) — reopen and resume");
      return;
    }
    if (n != 16 + sess->cfg.frame_bytes()) {
      queue_error(c, h.request_id, h.op, Status::BadParams,
                  "frame payload is " + std::to_string(n - 16) + " bytes, session " +
                      std::to_string(sid) + " expects " +
                      std::to_string(sess->cfg.frame_bytes()));
      return;
    }
    inflight_add(c, n);
    st.stream_frames.fetch_add(1, std::memory_order_relaxed);
    TemporalMetrics::get().stream_frames.add(1);
    NetMetrics::get().requests.add(1);
    auto payload = std::make_shared<Bytes>(std::move(f.payload));
    const u64 conn_id = c.id;
    const u64 t0 = now_ns();
    Impl* self = this;
    pool->submit([self, payload, h, sess = std::move(sess), conn_id, t0, n] {
      Completion comp;
      comp.conn_id = conn_id;
      comp.release = n;
      comp.t0_ns = t0;
      comp.work_start_ns = now_ns();
      comp.request_id = h.request_id;
      comp.op = h.base_op();
      comp.dtype = static_cast<u8>(sess->cfg.dtype);
      obs::TraceContext::Scope trace_ctx(h.request_id);
      obs::ScopedSpan work_span("net.work.stream_frame");
      const u64 fidx = rd_le64(payload->data() + 8);
      try {
        test_slowdown();
        std::lock_guard<std::mutex> lk(sess->m);
        if (sess->started && fidx != sess->expected_index)
          throw CompressionError("out-of-order frame index " + std::to_string(fidx) +
                                 " (session expects " +
                                 std::to_string(sess->expected_index) + ")");
        Field field = sess->cfg.dtype == DType::F64
                          ? Field(reinterpret_cast<const double*>(payload->data() + 16),
                                  sess->cfg.frame_values())
                          : Field(reinterpret_cast<const float*>(payload->data() + 16),
                                  sess->cfg.frame_values());
        const temporal::EncodedFrame ef = sess->enc.encode(field, fidx);
        sess->started = true;
        sess->expected_index = fidx + 1;
        sess->last_active_ns.store(now_ns(), std::memory_order_relaxed);
        sess->frames.fetch_add(1, std::memory_order_relaxed);
        (ef.type == temporal::FrameType::Intra ? sess->iframes : sess->pframes)
            .fetch_add(1, std::memory_order_relaxed);
        FrameHeader rh;
        rh.op = h.op | kResponseBit;
        rh.request_id = h.request_id;
        rh.dtype = static_cast<u8>(sess->cfg.dtype);
        rh.eb_type = static_cast<u8>(sess->cfg.eb);
        rh.eps = sess->cfg.eps;
        comp.frame = encode_frame(rh, temporal::encode_frame_record(ef));
      } catch (const std::exception& e) {
        comp.frame = encode_error_frame(h.request_id, h.op, Status::CompressFailed,
                                        e.what());
        comp.is_error = true;
      }
      comp.work_ns = now_ns() - comp.work_start_ns;
      {
        std::lock_guard<std::mutex> lk(self->comp_m);
        self->completions.push_back(std::move(comp));
      }
      self->wake();
    });
  }

  /// Admit a validated COMPRESS/DECOMPRESS request against the per-conn
  /// budget: dispatch now, or park it (which pauses reads) until in-flight
  /// bytes drop. An oversized single request is admitted alone.
  void admit(Connection& c, Frame&& f) {
    const std::size_t n = f.payload.size();
    if (!c.deferred.empty() ||
        (c.inflight != 0 && c.inflight + n > opts.max_inflight_bytes)) {
      c.deferred.push_back(std::move(f));
      return;
    }
    dispatch(c, std::move(f));
  }

  void handle_frame(Connection& c, Frame&& f) {
    const FrameHeader& h = f.header;
    // Request-scoped tracing starts here: everything on the loop (validation,
    // dispatch/enqueue) and — via the pool's context capture — everything in
    // the worker runs under this request id.
    obs::TraceContext::Scope trace_ctx(h.request_id);
    OBS_SPAN("net.handle_frame");
    st.frames_rx.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().frames_rx.add(1);
    if (h.is_response() || h.status != 0) {
      queue_error(c, h.request_id, h.op, Status::BadFrame,
                  "expected a request frame");
      return;
    }
    switch (static_cast<Op>(h.base_op())) {
      case Op::Ping: {
        st.requests_other.fetch_add(1, std::memory_order_relaxed);
        FrameHeader rh;
        rh.op = h.op | kResponseBit;
        rh.request_id = h.request_id;
        queue_response(c, encode_frame(rh, f.payload), /*is_error=*/false);
        return;
      }
      case Op::Stats: {
        st.requests_other.fetch_add(1, std::memory_order_relaxed);
        const std::string json = stats_json();
        FrameHeader rh;
        rh.op = h.op | kResponseBit;
        rh.request_id = h.request_id;
        queue_response(c, encode_frame(rh, json.data(), json.size()),
                       /*is_error=*/false);
        return;
      }
      case Op::Shutdown: {
        st.requests_other.fetch_add(1, std::memory_order_relaxed);
        FrameHeader rh;
        rh.op = h.op | kResponseBit;
        rh.request_id = h.request_id;
        queue_response(c, encode_frame(rh, nullptr, 0), /*is_error=*/false);
        begin_drain();
        return;
      }
      case Op::Metrics: {
        st.requests_other.fetch_add(1, std::memory_order_relaxed);
        const std::string fmt(f.payload.begin(), f.payload.end());
        std::string doc;
        if (fmt == "prom") {
          doc = obs::prometheus_text();
        } else if (fmt.empty() || fmt == "json") {
          doc = metrics_doc();
        } else if (fmt == "history") {
          doc = obs::FlightRecorder::global().history_json();
        } else {
          queue_error(c, h.request_id, h.op, Status::BadParams,
                      "unknown metrics format '" + fmt + "'");
          return;
        }
        st.metrics_scrapes.fetch_add(1, std::memory_order_relaxed);
        NetMetrics::get().metrics_scrapes.add(1);
        FrameHeader rh;
        rh.op = h.op | kResponseBit;
        rh.request_id = h.request_id;
        queue_response(c, encode_frame(rh, doc.data(), doc.size()),
                       /*is_error=*/false);
        return;
      }
      case Op::ShardMap: {
        st.requests_other.fetch_add(1, std::memory_order_relaxed);
        ClusterView cv = cluster_view();
        if (!cv.map) {
          queue_error(c, h.request_id, h.op, Status::BadParams,
                      "server is not in a cluster");
          return;
        }
        if (!f.payload.empty()) {
          // Exchange: the caller sent its own map. Adopt it when it is a
          // newer generation of the same cluster; either way the response
          // below carries our (possibly just-updated) map.
          cluster::ShardMap theirs;
          try {
            theirs = cluster::ShardMap::parse(f.payload);
          } catch (const CompressionError& e) {
            queue_error(c, h.request_id, h.op, Status::BadParams, e.what());
            return;
          }
          if (theirs.cluster_id() != cv.map->cluster_id()) {
            queue_error(c, h.request_id, h.op, Status::BadParams,
                        "cluster id mismatch ('" + theirs.cluster_id() + "' vs '" +
                            cv.map->cluster_id() + "')");
            return;
          }
          bool adopted = false;
          u64 old_epoch = 0;
          {
            std::lock_guard<std::mutex> lk(map_m);
            if (theirs.epoch() > map->epoch()) {
              old_epoch = map->epoch();
              map = std::make_shared<cluster::ShardMap>(std::move(theirs));
              self_index = map->find_node(node_id);
              adopted = true;
            }
            cv.map = map;
            cv.self = self_index;
          }
          if (adopted) {
            st.map_adopted.fetch_add(1, std::memory_order_relaxed);
            ClusterMetrics::get().map_adopted.add(1);
            obs::EventLog& log = obs::EventLog::global();
            if (log.would_log(obs::LogLevel::Info)) {
              obs::JsonWriter w;
              w.begin_object();
              w.kv("epoch_old", static_cast<unsigned long long>(old_epoch));
              w.kv("epoch_new", static_cast<unsigned long long>(cv.map->epoch()));
              w.kv("nodes", static_cast<unsigned long long>(cv.map->size()));
              w.kv("self_index", cv.self);
              w.end_object();
              log.emit(obs::LogLevel::Info, "shard_map_adopted", w.take());
            }
          }
        }
        st.map_exchanges.fetch_add(1, std::memory_order_relaxed);
        ClusterMetrics::get().map_exchanges.add(1);
        const Bytes body = cv.map->serialize();
        FrameHeader rh;
        rh.op = h.op | kResponseBit;
        rh.request_id = h.request_id;
        queue_response(c, encode_frame(rh, body), /*is_error=*/false);
        return;
      }
      case Op::Health: {
        st.requests_other.fetch_add(1, std::memory_order_relaxed);
        st.health_checks.fetch_add(1, std::memory_order_relaxed);
        ClusterMetrics::get().health_checks.add(1);
        const std::string json = health_json();
        FrameHeader rh;
        rh.op = h.op | kResponseBit;
        rh.request_id = h.request_id;
        queue_response(c, encode_frame(rh, json.data(), json.size()),
                       /*is_error=*/false);
        return;
      }
      case Op::Compress: {
        if (draining) {
          queue_error(c, h.request_id, h.op, Status::Draining, "server is draining");
          return;
        }
        if (h.dtype > 1 || h.eb_type > 2) {
          queue_error(c, h.request_id, h.op, Status::BadParams,
                      "unknown dtype/eb_type");
          return;
        }
        const std::size_t scalar = dtype_size(static_cast<DType>(h.dtype));
        if (f.payload.empty() || f.payload.size() % scalar != 0) {
          queue_error(c, h.request_id, h.op, Status::BadParams,
                      "payload size is not a positive multiple of the scalar size");
          return;
        }
        if (!std::isfinite(h.eps)) {
          queue_error(c, h.request_id, h.op, Status::BadParams, "eps is not finite");
          return;
        }
        st.requests_compress.fetch_add(1, std::memory_order_relaxed);
        admit(c, std::move(f));
        return;
      }
      case Op::Decompress: {
        if (draining) {
          queue_error(c, h.request_id, h.op, Status::Draining, "server is draining");
          return;
        }
        if (f.payload.empty()) {
          queue_error(c, h.request_id, h.op, Status::BadParams, "empty stream");
          return;
        }
        st.requests_decompress.fetch_add(1, std::memory_order_relaxed);
        admit(c, std::move(f));
        return;
      }
      case Op::StreamOpen: {
        st.requests_other.fetch_add(1, std::memory_order_relaxed);
        if (draining) {
          queue_error(c, h.request_id, h.op, Status::Draining, "server is draining");
          return;
        }
        if (f.payload.size() != 16) {
          queue_error(c, h.request_id, h.op, Status::BadParams,
                      "STREAM_OPEN payload must be 16 bytes (3x u32 dims + u32 "
                      "keyframe_interval)");
          return;
        }
        if (h.dtype > 1 || h.eb_type > 2 || !std::isfinite(h.eps)) {
          queue_error(c, h.request_id, h.op, Status::BadParams,
                      "unknown dtype/eb_type or non-finite eps");
          return;
        }
        temporal::SessionConfig cfg;
        cfg.dtype = static_cast<DType>(h.dtype);
        cfg.eb = static_cast<EbType>(h.eb_type);
        cfg.eps = h.eps;
        for (int d = 0; d < 3; ++d)
          cfg.dims[static_cast<std::size_t>(d)] = rd_le32(f.payload.data() + 4 * d);
        cfg.keyframe_interval = rd_le32(f.payload.data() + 12);
        cfg.exec = opts.exec;
        u64 sid = 0;
        {
          std::lock_guard<std::mutex> lk(sess_m);
          if (opts.max_sessions && sessions.size() >= opts.max_sessions) {
            queue_error(c, h.request_id, h.op, Status::SessionLimit,
                        "session limit of " + std::to_string(opts.max_sessions) +
                            " reached");
            return;
          }
          sid = next_session_id++;
          try {
            sessions.emplace(
                sid, std::make_shared<StreamSession>(sid, cfg, now_ns()));
          } catch (const CompressionError& e) {
            // FrameEncoder's config validation (zero frame, eps below the
            // dtype's min normal under ABS, ...).
            queue_error(c, h.request_id, h.op, Status::BadParams, e.what());
            return;
          }
        }
        st.sessions_opened.fetch_add(1, std::memory_order_relaxed);
        TemporalMetrics::get().sessions_opened.add(1);
        note_sessions_gauge();
        u8 body[8];
        for (int i = 0; i < 8; ++i) body[i] = static_cast<u8>(sid >> (8 * i));
        FrameHeader rh;
        rh.op = h.op | kResponseBit;
        rh.request_id = h.request_id;
        rh.dtype = h.dtype;
        rh.eb_type = h.eb_type;
        rh.eps = h.eps;
        queue_response(c, encode_frame(rh, body, sizeof body), /*is_error=*/false);
        return;
      }
      case Op::StreamFrame: {
        if (draining) {
          queue_error(c, h.request_id, h.op, Status::Draining, "server is draining");
          return;
        }
        if (f.payload.size() < 16) {
          queue_error(c, h.request_id, h.op, Status::BadParams,
                      "STREAM_FRAME payload must carry u64 session id + u64 "
                      "frame index + raw scalars");
          return;
        }
        admit(c, std::move(f));  // admit() -> dispatch() routes to dispatch_stream
        return;
      }
      case Op::StreamClose: {
        st.requests_other.fetch_add(1, std::memory_order_relaxed);
        if (f.payload.size() != 8) {
          queue_error(c, h.request_id, h.op, Status::BadParams,
                      "STREAM_CLOSE payload must be a u64 session id");
          return;
        }
        const u64 sid = rd_le64(f.payload.data());
        bool erased = false;
        {
          std::lock_guard<std::mutex> lk(sess_m);
          erased = sessions.erase(sid) != 0;
        }
        if (erased) {
          st.sessions_closed.fetch_add(1, std::memory_order_relaxed);
          TemporalMetrics::get().sessions_closed.add(1);
          note_sessions_gauge();
        }
        // Idempotent: closing an unknown/already-evicted session is Ok.
        FrameHeader rh;
        rh.op = h.op | kResponseBit;
        rh.request_id = h.request_id;
        queue_response(c, encode_frame(rh, nullptr, 0), /*is_error=*/false);
        return;
      }
    }
    queue_error(c, h.request_id, h.op, Status::BadFrame,
                "unsupported op " + std::to_string(h.base_op()));
  }

  /// Parse and handle every complete frame buffered on the connection,
  /// stopping early when backpressure parks it.
  void pump(Connection& c) {
    // Budget freed? Un-park deferred requests first, oldest first.
    while (!c.deferred.empty() &&
           (c.inflight == 0 ||
            c.inflight + c.deferred.front().payload.size() <= opts.max_inflight_bytes)) {
      if (draining) {
        Frame f = std::move(c.deferred.front());
        c.deferred.pop_front();
        queue_error(c, f.header.request_id, f.header.op, Status::Draining,
                    "server is draining");
        continue;
      }
      Frame f = std::move(c.deferred.front());
      c.deferred.pop_front();
      dispatch(c, std::move(f));
    }
    while (!paused(c)) {
      Frame f;
      const FrameParser::Result r = c.parser.next(f);
      if (r == FrameParser::Result::NeedMore) break;
      if (r == FrameParser::Result::Ready) {
        handle_frame(c, std::move(f));
        continue;
      }
      // Typed error frame for the offender; framing errors also poison the
      // stream, so stop reading and close once everything queued flushes.
      queue_error(c, c.parser.error_request_id(), c.parser.error_op(),
                  c.parser.status(), c.parser.error());
      if (c.parser.fatal()) {
        c.no_read = true;
        break;
      }
    }
  }

  void read_ready(Connection& c) {
    u8 buf[64 << 10];
    // Bounded per poll round: ~256 KiB keeps one fast peer from starving
    // the rest of the loop (level-triggered poll re-arms immediately).
    for (int round = 0; round < 4; ++round) {
      const ssize_t rc = ::recv(c.sock.fd(), buf, sizeof(buf), 0);
      if (rc > 0) {
        st.bytes_rx.fetch_add(static_cast<u64>(rc), std::memory_order_relaxed);
        NetMetrics::get().bytes_rx.add(static_cast<u64>(rc));
        c.parser.feed(buf, static_cast<std::size_t>(rc));
        if (static_cast<std::size_t>(rc) < sizeof(buf)) break;
        continue;
      }
      if (rc == 0) {  // peer half-closed: no more requests will arrive
        c.no_read = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      c.no_read = true;  // hard error: reap below
      break;
    }
    pump(c);
  }

  void begin_drain() {
    if (draining) return;
    draining = true;
    st.draining.store(true, std::memory_order_relaxed);
    drain_deadline_ns = now_ns() + static_cast<u64>(opts.drain_timeout_ms) * 1000000ull;
    if (poller) {
      if (listen.valid()) poller->remove(listen.fd());
      if (mlisten.valid()) poller->remove(mlisten.fd());
      for (auto& [id, hc] : http_conns) poller->remove(hc->sock.fd());
    }
    listen.close();  // stop accepting; queued SYNs get RST from the kernel
    mlisten.close();
    http_conns.clear();  // scrapes are stateless; no point flushing them out
    for (auto& [id, c] : conns) {
      while (!c->deferred.empty()) {
        Frame f = std::move(c->deferred.front());
        c->deferred.pop_front();
        queue_error(*c, f.header.request_id, f.header.op, Status::Draining,
                    "server is draining");
      }
    }
    // Temporal sessions die with the drain: clients get Draining for frames
    // of this process's lifetime and BadSession from the next one, and both
    // recover the same way (reopen, resume at a keyframe).
    kill_all_sessions();
  }

  void process_completions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lk(comp_m);
      batch.swap(completions);
    }
    for (Completion& comp : batch) {
      NetMetrics& m = NetMetrics::get();
      const u64 us = (now_ns() - comp.t0_ns) / 1000;
      m.request_us.record(us);
      if (comp.op == static_cast<u8>(Op::Compress)) m.compress_us.record(us);
      if (comp.op == static_cast<u8>(Op::Decompress)) m.decompress_us.record(us);
      note_slow(comp, us);
      auto it = conns.find(comp.conn_id);
      if (it == conns.end()) {
        // Connection died before its answer was ready: close_conn already
        // returned its in-flight bytes, so just drop the response.
        continue;
      }
      Connection& c = *it->second;
      inflight_release(c, comp.release);
      queue_response(c, std::move(comp.frame), comp.is_error);
      pump(c);  // freed budget may un-park deferred frames / buffered bytes
    }
  }

  /// EMFILE/ENFILE on accept: the process is out of fds but the pending
  /// connection still sits in the backlog. Close the reserve fd to free one
  /// slot, accept-and-close the peer (a deterministic close beats a backlog
  /// timeout), re-arm the reserve, and log. Returns false when even the
  /// reserve trick could not accept (nothing further to shed this round).
  bool shed_accept() {
    st.accept_overloads.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().accept_overloads.add(1);
    if (reserve_fd >= 0) {
      ::close(reserve_fd);
      reserve_fd = -1;
    }
    const int fd = ::accept(listen.fd(), nullptr, nullptr);
    if (fd >= 0) ::close(fd);
    if (reserve_fd < 0) reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    obs::EventLog& log = obs::EventLog::global();
    if (log.would_log(obs::LogLevel::Warn)) {
      obs::JsonWriter w;
      w.begin_object();
      w.kv("connections_current",
           static_cast<unsigned long long>(
               st.connections_current.load(std::memory_order_relaxed)));
      w.kv("shed_total", static_cast<unsigned long long>(
                             st.accept_overloads.load(std::memory_order_relaxed)));
      w.end_object();
      log.emit(obs::LogLevel::Warn, "accept_overload", w.take());
    }
    return fd >= 0;
  }

  void accept_ready() {
    for (;;) {
      // At the --max-conns cap the listener is deregistered (run() arms it
      // with no events), so new peers queue in the kernel backlog until a
      // connection closes; this check only guards the same-round races.
      if (opts.max_conns && conns.size() >= opts.max_conns) return;
      const int fd = ::accept(listen.fd(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        if (errno == EMFILE || errno == ENFILE) {
          // Out of fds is an overload, not a crash: shed and keep serving.
          if (!shed_accept()) return;
          continue;
        }
        return;  // transient accept errors (ECONNABORTED): keep serving
      }
      Socket s(fd);
      set_nonblocking(fd, true);
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const u64 id = next_conn_id++;
      conns.emplace(id, std::make_unique<Connection>(id, std::move(s),
                                                     opts.max_frame_payload));
      st.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      st.connections_current.fetch_add(1, std::memory_order_relaxed);
      NetMetrics& m = NetMetrics::get();
      m.connections_accepted.add(1);
      m.connections.set(static_cast<long long>(
          st.connections_current.load(std::memory_order_relaxed)));
    }
  }

  // -- HTTP /metrics listener ----------------------------------------------

  void http_accept() {
    for (;;) {
      const int fd = ::accept(mlisten.fd(), nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN/EINTR/transient: poll re-arms us
      Socket s(fd);
      set_nonblocking(fd, true);
      http_conns.emplace(next_http_id++, std::make_unique<HttpConn>(std::move(s)));
    }
  }

  /// Render the response for a parsed request line. Only GET is served; the
  /// handful of paths map straight onto the PFPN STATS/METRICS payloads.
  std::string http_response(const std::string& method, const std::string& path) {
    std::string status = "200 OK";
    std::string ctype = "text/plain; charset=utf-8";
    std::string body;
    if (method != "GET") {
      status = "405 Method Not Allowed";
      body = "only GET is supported\n";
    } else if (path == "/metrics") {
      body = obs::prometheus_text();
      ctype = "text/plain; version=0.0.4; charset=utf-8";
    } else if (path == "/metrics.json") {
      body = metrics_doc();
      ctype = "application/json";
    } else if (path == "/stats") {
      body = stats_json();
      ctype = "application/json";
    } else if (path == "/history") {
      body = obs::FlightRecorder::global().history_json();
      ctype = "application/json";
    } else {
      status = "404 Not Found";
      body = "unknown path (try /metrics, /metrics.json, /stats, /history)\n";
    }
    if (status[0] == '2' && (path == "/metrics" || path == "/metrics.json")) {
      st.metrics_scrapes.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::get().metrics_scrapes.add(1);
    }
    std::string resp = "HTTP/1.1 " + status + "\r\n";
    resp += "Content-Type: " + ctype + "\r\n";
    resp += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    resp += "Connection: close\r\n\r\n";
    resp += body;
    return resp;
  }

  void http_read(HttpConn& hc) {
    char buf[4096];
    while (hc.out.empty()) {
      const ssize_t rc = ::recv(hc.sock.fd(), buf, sizeof(buf), 0);
      if (rc > 0) {
        hc.in.append(buf, static_cast<std::size_t>(rc));
      } else if (rc == 0) {
        hc.no_read = true;
        break;
      } else if (errno == EINTR) {
        continue;
      } else {
        if (!(errno == EAGAIN || errno == EWOULDBLOCK)) hc.no_read = true;
        break;
      }
      const std::size_t hdr_end = hc.in.find("\r\n\r\n");
      if (hdr_end != std::string::npos) {
        // Request line: METHOD SP PATH SP VERSION. Anything malformed gets
        // a 404 from the path match rather than special-casing.
        const std::size_t line_end = hc.in.find("\r\n");
        std::string method, path;
        const std::string line = hc.in.substr(0, line_end);
        const std::size_t sp1 = line.find(' ');
        if (sp1 != std::string::npos) {
          method = line.substr(0, sp1);
          const std::size_t sp2 = line.find(' ', sp1 + 1);
          path = line.substr(sp1 + 1, sp2 == std::string::npos
                                          ? std::string::npos
                                          : sp2 - sp1 - 1);
        }
        hc.out = http_response(method, path);
        break;
      }
      if (hc.in.size() > 8192) {  // header cap: refuse absurd requests
        hc.out = "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n"
                 "Connection: close\r\n\r\n";
        hc.no_read = true;
        break;
      }
    }
  }

  /// Returns true when the connection is finished and should be closed.
  bool http_flush(HttpConn& hc) {
    while (hc.out_off < hc.out.size()) {
      const ssize_t rc = ::send(hc.sock.fd(), hc.out.data() + hc.out_off,
                                hc.out.size() - hc.out_off, MSG_NOSIGNAL);
      if (rc > 0) {
        hc.out_off += static_cast<std::size_t>(rc);
        continue;
      }
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
      if (rc < 0 && errno == EINTR) continue;
      return true;  // peer gone
    }
    return !hc.out.empty();  // fully flushed (one response per connection)
  }

  void close_conn(std::map<u64, std::unique_ptr<Connection>>::iterator it) {
    // In-flight bytes of a dying conn are given back here; its completions
    // will find no connection and skip the (already-done) release.
    st.inflight_bytes.fetch_sub(it->second->inflight, std::memory_order_relaxed);
    it->second->inflight = 0;
    if (poller) poller->remove(it->second->sock.fd());
    conns.erase(it);
    st.connections_current.fetch_sub(1, std::memory_order_relaxed);
    NetMetrics::get().connections.set(static_cast<long long>(
        st.connections_current.load(std::memory_order_relaxed)));
  }

  void run() {
    // Flight recorder + crash handler live for the duration of the loop.
    // stall_ms alone still needs the sampler thread (it drives the checks),
    // so any of the three options brings the recorder up.
    const bool flight_on =
        opts.flight_ms > 0 || opts.stall_ms > 0 || !opts.crash_dir.empty();
    if (flight_on) {
      if (!opts.crash_dir.empty()) obs::install_crash_handler(opts.crash_dir);
      obs::FlightRecorder::Options fo;
      fo.interval_ms = opts.flight_ms > 0 ? opts.flight_ms : 1000;
      fo.depth = opts.flight_depth;
      fo.stall_ms = opts.stall_ms;
      fo.crash_dir = opts.crash_dir;
      fo.extra = [this] {
        return "{\"stats\":" + stats_json() +
               ",\"slow_requests\":" + slow_json() + "}";
      };
      obs::FlightRecorder& fr = obs::FlightRecorder::global();
      fr.configure(std::move(fo));
      fr.start();
    }

    // Tags carry the fd's kind in the top byte and the conn/http id below
    // it, so one epoll_wait result routes straight to its handler with no
    // per-fd lookup table rebuilt per round.
    constexpr u64 kTagMask = 0xFFull << 56;
    constexpr u64 kTagWake = 1ull << 56;
    constexpr u64 kTagListen = 2ull << 56;
    constexpr u64 kTagMListen = 3ull << 56;
    constexpr u64 kTagConn = 4ull << 56;
    constexpr u64 kTagHttp = 5ull << 56;
    constexpr u64 kIdMask = ~kTagMask;

    poller = std::make_unique<Poller>(opts.use_epoll);
    epoll_active.store(poller->epoll(), std::memory_order_relaxed);
    std::vector<Poller::Event> events;
    for (;;) {
      if (stop_requested.load(std::memory_order_relaxed)) begin_drain();
      if (draining) {
        // Reap idle conns; force-close stragglers past the flush deadline.
        const bool past_deadline = now_ns() >= drain_deadline_ns;
        for (auto it = conns.begin(); it != conns.end();) {
          Connection& c = *it->second;
          const bool idle = c.inflight == 0 && c.outq.empty() && c.deferred.empty();
          if (idle || past_deadline)
            close_conn(it++);
          else
            ++it;
        }
        if (conns.empty()) break;
      }

      // Declare the interest set. The Poller caches per-fd state, so an
      // unchanged fd costs a hash probe and no syscall on the epoll path.
      poller->set(wake_r, POLLIN, kTagWake);
      if (listen.valid()) {
        const bool full = opts.max_conns && conns.size() >= opts.max_conns;
        poller->set(listen.fd(), full ? 0 : POLLIN, kTagListen);
      }
      for (auto& [id, c] : conns) {
        short ev = 0;
        if (!c->no_read && !paused(*c)) ev |= POLLIN;
        if (!c->outq.empty()) ev |= POLLOUT;
        // ev == 0 still reports error/hangup, poll(2) semantics.
        poller->set(c->sock.fd(), ev, kTagConn | id);
      }
      if (mlisten.valid()) poller->set(mlisten.fd(), POLLIN, kTagMListen);
      for (auto& [id, hc] : http_conns)
        poller->set(hc->sock.fd(),
                    static_cast<short>(hc->out.empty() ? POLLIN : POLLOUT),
                    kTagHttp | id);

      poller->wait(events, draining ? 20 : 200);

      // Fixed processing order regardless of event order: wake-pipe drain,
      // completions, accepts, connection I/O, HTTP — same as the poll-array
      // loop this replaces.
      bool accept_hit = false, maccept_hit = false;
      for (const Poller::Event& e : events) {
        if (e.tag == kTagWake && (e.revents & POLLIN)) {
          u8 sink[256];
          while (::read(wake_r, sink, sizeof(sink)) > 0) {
          }
        } else if (e.tag == kTagListen) {
          accept_hit = true;
        } else if (e.tag == kTagMListen) {
          maccept_hit = true;
        }
      }
      process_completions();
      evict_idle_sessions();
      if (stop_requested.load(std::memory_order_relaxed)) begin_drain();
      if (accept_hit && listen.valid()) accept_ready();

      for (const Poller::Event& e : events) {
        if ((e.tag & kTagMask) != kTagConn) continue;
        auto it = conns.find(e.tag & kIdMask);
        if (it == conns.end()) continue;  // closed earlier this round
        Connection& c = *it->second;
        if (e.revents & (POLLERR | POLLNVAL)) {
          close_conn(it);
          continue;
        }
        if (e.revents & POLLOUT) flush_out(c);
        if (e.revents & (POLLIN | POLLHUP)) {
          if (!c.no_read)
            read_ready(c);
          else if (e.revents & POLLHUP) {
            // Peer fully gone and nothing readable: flush what we can.
            flush_out(c);
          }
        }
        // Reap: peer can't send more, nothing pending either way.
        if (c.no_read && c.inflight == 0 && c.deferred.empty() && c.outq.empty())
          close_conn(it);
      }

      if (maccept_hit && mlisten.valid()) http_accept();
      for (const Poller::Event& e : events) {
        if ((e.tag & kTagMask) != kTagHttp) continue;
        auto it = http_conns.find(e.tag & kIdMask);
        if (it == http_conns.end()) continue;  // cleared by a drain this round
        HttpConn& hc = *it->second;
        bool done = (e.revents & (POLLERR | POLLNVAL | POLLHUP)) != 0 &&
                    hc.out.empty();
        if (!done && (e.revents & POLLIN)) http_read(hc);
        if (!done && !hc.out.empty()) done = http_flush(hc);
        if (!done && hc.no_read && hc.out.empty()) done = true;
        if (done) {
          poller->remove(hc.sock.fd());
          http_conns.erase(it);
        }
      }
    }
    poller.reset();
    // Every connection is gone; quiesce the pool (completions for closed
    // conns are dropped) and drop whatever the workers pushed meanwhile.
    pool->drain();
    process_completions();
    // Stop the sampler after the pool is quiet: the last snapshot (and the
    // crash body, when armed) reflects the fully drained server.
    if (flight_on) {
      obs::FlightRecorder& fr = obs::FlightRecorder::global();
      fr.sample_now();
      fr.stop();
    }
  }
};

Server::Server(const Options& opts) : impl_(std::make_unique<Impl>(opts)) {
  port_ = local_port(impl_->listen);
  metrics_port_ = impl_->metrics_port_bound;
}

Server::~Server() = default;

void Server::run() { impl_->run(); }

void Server::request_stop() {
  impl_->stop_requested.store(true, std::memory_order_relaxed);
  impl_->wake();
}

void Server::set_cluster(const cluster::ShardMap& map, const std::string& node_id) {
  impl_->install_map(map, node_id);
}

cluster::ShardMap Server::shard_map() const {
  const Impl::ClusterView cv = impl_->cluster_view();
  return cv.map ? *cv.map : cluster::ShardMap();
}

Server::Stats Server::stats() const { return impl_->snapshot(); }

std::string Server::stats_json() const { return impl_->stats_json(); }

std::string Server::metrics_json() const { return impl_->metrics_doc(); }

}  // namespace repro::net
