#include "cluster/shard_map.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <set>

#include "common/checksum.hpp"
#include "obs/json.hpp"

namespace repro::cluster {
namespace {

constexpr u32 kMapMagic = 0x4D534650;  // "PFSM" little-endian
constexpr u16 kMapVersion = 1;

template <typename T>
void put_le(Bytes& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    out.push_back(static_cast<u8>(v >> (8 * i)));
}

void put_str(Bytes& out, const std::string& s) {
  if (s.size() > 0xFFFF)
    throw CompressionError("PFSM: string field over 65535 bytes");
  put_le<u16>(out, static_cast<u16>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader over a parse buffer.
struct Reader {
  const u8* p;
  std::size_t n;
  std::size_t pos = 0;

  template <typename T>
  T get() {
    if (n - pos < sizeof(T)) throw CompressionError("PFSM: truncated map");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v |= static_cast<T>(p[pos + i]) << (8 * i);
    pos += sizeof(T);
    return v;
  }

  std::string get_str() {
    const u16 len = get<u16>();
    if (n - pos < len) throw CompressionError("PFSM: truncated map");
    std::string s(reinterpret_cast<const char*>(p + pos), len);
    pos += len;
    return s;
  }
};

/// Ring position of a key: both halves of the 128-bit hash folded so keys
/// differing only in the low half still spread.
u64 ring_point(const common::Hash128& key) { return key.hi ^ (key.lo * 0x9E3779B97F4A7C15ull); }

}  // namespace

ShardMap::ShardMap(std::string cluster_id, std::vector<NodeInfo> nodes,
                   u32 vnodes, u16 replicas, u64 epoch)
    : cluster_id_(std::move(cluster_id)),
      nodes_(std::move(nodes)),
      vnodes_(vnodes),
      replicas_(replicas),
      epoch_(epoch) {
  if (nodes_.empty())
    throw CompressionError("ShardMap: a cluster needs at least one node");
  if (vnodes_ == 0) throw CompressionError("ShardMap: vnodes must be > 0");
  if (replicas_ == 0) throw CompressionError("ShardMap: replicas must be > 0");
  std::sort(nodes_.begin(), nodes_.end(),
            [](const NodeInfo& a, const NodeInfo& b) { return a.id < b.id; });
  std::set<std::string> ids;
  for (const NodeInfo& n : nodes_) {
    if (n.id.empty()) throw CompressionError("ShardMap: empty node id");
    if (!ids.insert(n.id).second)
      throw CompressionError("ShardMap: duplicate node id '" + n.id + "'");
  }
  build_ring();
}

void ShardMap::build_ring() {
  ring_.clear();
  ring_.reserve(static_cast<std::size_t>(nodes_.size()) * vnodes_);
  for (u32 ni = 0; ni < nodes_.size(); ++ni) {
    for (u32 v = 0; v < vnodes_; ++v) {
      const std::string label = nodes_[ni].id + "#" + std::to_string(v);
      ring_.emplace_back(common::hash128(label.data(), label.size()).hi, ni);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ShardMap::find_node(const std::string& id) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].id == id) return static_cast<int>(i);
  return -1;
}

std::vector<u32> ShardMap::route(const common::Hash128& key) const {
  if (ring_.empty()) throw CompressionError("ShardMap: route on an empty map");
  const u64 point = ring_point(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(point, u32{0}),
      [](const std::pair<u64, u32>& a, const std::pair<u64, u32>& b) {
        return a.first < b.first;
      });
  const std::size_t want = std::min<std::size_t>(replicas_, nodes_.size());
  std::vector<u32> out;
  out.reserve(want);
  // Walk clockwise collecting distinct nodes; replicas_ distinct owners are
  // always found within one full lap because every node owns vnodes points.
  for (std::size_t step = 0; step < ring_.size() && out.size() < want; ++step) {
    if (it == ring_.end()) it = ring_.begin();
    const u32 ni = it->second;
    if (std::find(out.begin(), out.end(), ni) == out.end()) out.push_back(ni);
    ++it;
  }
  return out;
}

u32 ShardMap::primary(const common::Hash128& key) const { return route(key)[0]; }

bool ShardMap::owns(const common::Hash128& key, int node_index) const {
  if (node_index < 0) return false;
  const std::vector<u32> r = route(key);
  return std::find(r.begin(), r.end(), static_cast<u32>(node_index)) != r.end();
}

ShardMap ShardMap::with_node_added(NodeInfo node) const {
  if (find_node(node.id) >= 0)
    throw CompressionError("ShardMap: node '" + node.id + "' already present");
  std::vector<NodeInfo> nodes = nodes_;
  nodes.push_back(std::move(node));
  return ShardMap(cluster_id_, std::move(nodes), vnodes_, replicas_, epoch_ + 1);
}

ShardMap ShardMap::with_node_removed(const std::string& id) const {
  const int idx = find_node(id);
  if (idx < 0) throw CompressionError("ShardMap: unknown node '" + id + "'");
  std::vector<NodeInfo> nodes = nodes_;
  nodes.erase(nodes.begin() + idx);
  return ShardMap(cluster_id_, std::move(nodes), vnodes_, replicas_, epoch_ + 1);
}

Bytes ShardMap::serialize() const {
  Bytes out;
  put_le<u32>(out, kMapMagic);
  put_le<u16>(out, kMapVersion);
  put_le<u16>(out, replicas_);
  put_le<u32>(out, vnodes_);
  put_le<u64>(out, epoch_);
  put_str(out, cluster_id_);
  put_le<u32>(out, static_cast<u32>(nodes_.size()));
  for (const NodeInfo& n : nodes_) {  // nodes_ sorted by id => deterministic
    put_str(out, n.id);
    put_str(out, n.host);
    put_le<u16>(out, n.port);
  }
  put_le<u32>(out, common::crc32(out.data(), out.size()));
  return out;
}

ShardMap ShardMap::parse(const void* data, std::size_t n) {
  Reader r{static_cast<const u8*>(data), n};
  if (n < 4 + 2 + 2 + 4 + 8 + 2 + 4 + 4)
    throw CompressionError("PFSM: truncated map");
  if (r.get<u32>() != kMapMagic) throw CompressionError("PFSM: bad magic");
  const u16 version = r.get<u16>();
  if (version != kMapVersion)
    throw CompressionError("PFSM: unsupported version " + std::to_string(version));
  const u16 replicas = r.get<u16>();
  const u32 vnodes = r.get<u32>();
  const u64 epoch = r.get<u64>();
  std::string cluster_id = r.get_str();
  const u32 count = r.get<u32>();
  std::vector<NodeInfo> nodes;
  nodes.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    NodeInfo ni;
    ni.id = r.get_str();
    ni.host = r.get_str();
    ni.port = r.get<u16>();
    nodes.push_back(std::move(ni));
  }
  const std::size_t body = r.pos;
  const u32 stored = r.get<u32>();
  const u32 actual = common::crc32(r.p, body);
  if (stored != actual) throw CompressionError("PFSM: CRC mismatch");
  if (r.pos != n) throw CompressionError("PFSM: trailing bytes after map");
  return ShardMap(std::move(cluster_id), std::move(nodes), vnodes, replicas, epoch);
}

ShardMap ShardMap::load_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw CompressionError("PFSM: cannot open '" + path + "'");
  Bytes b((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  return parse(b);
}

void ShardMap::save_file(const std::string& path) const {
  const Bytes b = serialize();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw CompressionError("PFSM: cannot write '" + path + "'");
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
  if (!f) throw CompressionError("PFSM: short write to '" + path + "'");
}

std::string ShardMap::json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("cluster_id", cluster_id_);
  w.kv("epoch", static_cast<unsigned long long>(epoch_));
  w.kv("replicas", static_cast<unsigned long long>(replicas_));
  w.kv("vnodes", static_cast<unsigned long long>(vnodes_));
  w.key("nodes").begin_array();
  for (const NodeInfo& n : nodes_) {
    w.begin_object();
    w.kv("id", n.id);
    w.kv("host", n.host);
    w.kv("port", static_cast<unsigned long long>(n.port));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace repro::cluster
