// bench_temporal — inter-frame delta coding vs. per-frame intra on the
// evolving suites.
//
// For each evolving suite the bench encodes the same generated frame
// sequence twice with temporal::FrameEncoder:
//
//   temporal   the real session shape — keyframe every --keyframe-interval
//              frames, P frames (closed-loop residual vs. the previous
//              reconstruction) in between
//   intra      keyframe_interval = 1, so every frame is an independent PFPL
//              stream — the "compress each frame separately" strawman
//
// and reports the compression-ratio win and both encode throughputs. The
// correlated suites (advect, diffuse) gate the win: temporal must beat intra
// by --min-ratio-win (default 1.3x, the ISSUE acceptance bar) and must not
// cost more than --max-tput-loss of intra's encode throughput. The regime
// suite — which deliberately kills temporal correlation mid-stream — is
// reported but never gated on the win: its job is proving the per-chunk
// intra fallback keeps the encoder from losing to intra outright.
//
// Every temporal stream is decoded with temporal::FrameDecoder and every
// frame re-checked against the session bound (metrics::count_violations).
// Any violation is a hard failure: the guaranteed-error-bound contract of
// the paper extends to P frames or the subsystem is wrong.
//
//   bench_temporal                       # 32 frames x ~16k values, 3 reps
//   bench_temporal --frames 64 --values 65536 --runs 5
//   bench_temporal --update-baseline --baseline BENCH_baseline.json
//
// Exit codes: 0 ok, 1 bound violation / ratio or throughput gate miss,
// 3 failed --gate against the baseline.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "data/evolving.hpp"
#include "harness.hpp"
#include "metrics/error_stats.hpp"
#include "temporal/temporal.hpp"

using namespace repro;

namespace {

struct TemporalCfg {
  std::size_t frames = 32;
  std::size_t values = 16384;
  u32 keyframe_interval = 16;
  double min_ratio_win = 1.3;   ///< correlated suites: temporal/intra ratio
  double max_tput_loss = 0.25;  ///< temporal encode >= (1 - this) * intra
};

TemporalCfg parse_temporal_flags(int argc, char** argv) {
  TemporalCfg cfg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : "0"; };
    if (a == "--frames") cfg.frames = std::strtoull(next(), nullptr, 10);
    else if (a == "--values") cfg.values = std::strtoull(next(), nullptr, 10);
    else if (a == "--keyframe-interval")
      cfg.keyframe_interval = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    else if (a == "--min-ratio-win") cfg.min_ratio_win = std::atof(next());
    else if (a == "--max-tput-loss") cfg.max_tput_loss = std::atof(next());
  }
  if (cfg.frames < 2) cfg.frames = 2;
  if (cfg.values == 0) cfg.values = 1;
  return cfg;
}

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// The (eb, eps) each suite is benched under — chosen to be representative
/// of the suite's scale, not tuned to flatter the encoder.
struct SuiteCase {
  const char* name;
  EbType eb;
  double eps;
  bool gate_win;  ///< correlated suite: the ratio win is an acceptance bar
};

constexpr SuiteCase kCases[] = {
    {"advect", EbType::ABS, 1e-3, true},
    {"diffuse", EbType::NOA, 1e-4, true},
    {"regime", EbType::ABS, 1e-3, false},
};

struct PassResult {
  u64 stream_bytes = 0;
  u64 iframes = 0, pframes = 0;
  std::vector<double> times;  ///< per-rep encode wall seconds
  std::size_t violations = 0;
};

const u8* frame_bytes(const data::FrameSequence& seq, std::size_t i) {
  return seq.dtype == DType::F32
             ? reinterpret_cast<const u8*>(seq.f32[i].data())
             : reinterpret_cast<const u8*>(seq.f64[i].data());
}

std::size_t audit_frame(const temporal::SessionConfig& cfg, const u8* orig,
                        const u8* recon) {
  const std::size_t n = cfg.frame_values();
  if (cfg.dtype == DType::F32)
    return metrics::count_violations(
        std::span<const float>(reinterpret_cast<const float*>(orig), n),
        std::span<const float>(reinterpret_cast<const float*>(recon), n), cfg.eps,
        cfg.eb);
  return metrics::count_violations(
      std::span<const double>(reinterpret_cast<const double*>(orig), n),
      std::span<const double>(reinterpret_cast<const double*>(recon), n), cfg.eps,
      cfg.eb);
}

/// Encode the whole sequence `reps` times (fresh encoder each rep — every
/// rep is a cold session); decode + audit once.
PassResult run_pass(const data::FrameSequence& seq, const temporal::SessionConfig& cfg,
                    int reps) {
  PassResult out;
  std::vector<temporal::EncodedFrame> encoded;
  for (int rep = 0; rep < reps; ++rep) {
    temporal::FrameEncoder enc(cfg);
    std::vector<temporal::EncodedFrame> frames;
    frames.reserve(seq.frames());
    const double t0 = now_s();
    for (std::size_t i = 0; i < seq.frames(); ++i)
      frames.push_back(enc.encode(seq.frame(i), i));
    out.times.push_back(now_s() - t0);
    if (rep == 0) {
      encoded = std::move(frames);
      out.iframes = enc.intra_frames();
      out.pframes = enc.predicted_frames();
    }
  }
  for (const temporal::EncodedFrame& f : encoded) out.stream_bytes += f.byte_size();
  temporal::FrameDecoder dec(cfg);
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    const std::vector<u8>& recon = dec.decode(encoded[i]);
    out.violations += audit_frame(cfg, frame_bytes(seq, i), recon.data());
  }
  return out;
}

bench::Row make_row(const std::string& name, double eps, const PassResult& r,
                    u64 raw_bytes) {
  bench::Row row;
  row.compressor = name;
  row.eb = eps;
  row.ratio = r.stream_bytes ? static_cast<double>(raw_bytes) / r.stream_bytes : 0.0;
  const double mb = static_cast<double>(raw_bytes) / (1024.0 * 1024.0);
  for (double s : r.times)
    if (s > 0) row.comp_run_mbps.push_back(mb / s);
  const double med = median(r.times);
  row.comp_mbps = med > 0 ? mb / med : 0.0;
  row.violations = r.violations;
  row.has_decomp = row.has_psnr = false;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SweepConfig sweep = bench::parse_args(argc, argv, bench::SweepConfig{});
  const TemporalCfg cfg = parse_temporal_flags(argc, argv);
  const int reps = std::max(3, sweep.runs);
  int failures = 0;

  std::vector<bench::Row> rows;
  for (const SuiteCase& c : kCases) {
    const data::EvolvingSpec spec = data::find_evolving(c.name);
    const data::FrameSequence seq = data::generate_evolving(
        spec, cfg.values, cfg.frames);
    const u64 raw_bytes =
        static_cast<u64>(seq.frames()) * seq.frame_values() * dtype_size(seq.dtype);

    temporal::SessionConfig scfg;
    scfg.dtype = seq.dtype;
    scfg.eb = c.eb;
    scfg.eps = c.eps;
    scfg.dims = {static_cast<u32>(seq.dims[0]), static_cast<u32>(seq.dims[1]),
                 static_cast<u32>(seq.dims[2])};
    scfg.keyframe_interval = cfg.keyframe_interval;
    const PassResult temporal = run_pass(seq, scfg, reps);

    temporal::SessionConfig icfg = scfg;
    icfg.keyframe_interval = 1;  // every frame intra: the per-frame strawman
    const PassResult intra = run_pass(seq, icfg, reps);

    const double t_ratio =
        temporal.stream_bytes ? static_cast<double>(raw_bytes) / temporal.stream_bytes : 0.0;
    const double i_ratio =
        intra.stream_bytes ? static_cast<double>(raw_bytes) / intra.stream_bytes : 0.0;
    const double win = i_ratio > 0 ? t_ratio / i_ratio : 0.0;
    const double mb = static_cast<double>(raw_bytes) / (1024.0 * 1024.0);
    const double t_mbps = median(temporal.times) > 0 ? mb / median(temporal.times) : 0.0;
    const double i_mbps = median(intra.times) > 0 ? mb / median(intra.times) : 0.0;

    std::fprintf(stderr,
                 "bench_temporal: %-8s %zu frames (%llu I + %llu P)  temporal %.3fx "
                 "@ %.1f MB/s  intra %.3fx @ %.1f MB/s  win %.3fx  violations %zu\n",
                 c.name, seq.frames(),
                 static_cast<unsigned long long>(temporal.iframes),
                 static_cast<unsigned long long>(temporal.pframes), t_ratio, t_mbps,
                 i_ratio, i_mbps, win, temporal.violations + intra.violations);

    if (temporal.violations || intra.violations) {
      std::fprintf(stderr, "bench_temporal: %s: BOUND VIOLATED (%zu values)\n", c.name,
                   temporal.violations + intra.violations);
      ++failures;
    }
    if (c.gate_win && win < cfg.min_ratio_win) {
      std::fprintf(stderr,
                   "bench_temporal: %s: ratio win %.3fx below required %.2fx\n",
                   c.name, win, cfg.min_ratio_win);
      ++failures;
    }
    if (!c.gate_win && t_ratio + 1e-9 < i_ratio * 0.95) {
      // Fallback safety net: even with correlation killed, per-chunk intra
      // fallback must keep temporal within 5% of plain intra coding.
      std::fprintf(stderr,
                   "bench_temporal: %s: temporal %.3fx lost >5%% to intra %.3fx "
                   "despite chunk fallback\n",
                   c.name, t_ratio, i_ratio);
      ++failures;
    }
    if (t_mbps < (1.0 - cfg.max_tput_loss) * i_mbps) {
      std::fprintf(stderr,
                   "bench_temporal: %s: temporal encode %.1f MB/s is more than "
                   "%.0f%% below intra %.1f MB/s\n",
                   c.name, t_mbps, 100.0 * cfg.max_tput_loss, i_mbps);
      ++failures;
    }

    rows.push_back(make_row(std::string("Temporal_") + c.name, c.eps, temporal,
                            raw_bytes));
    rows.push_back(make_row(std::string("Intra_") + c.name, c.eps, intra, raw_bytes));
    // The headline acceptance number as its own baseline metric: the win is
    // what the ISSUE gates, so regressions in it must be visible even when
    // both absolute ratios drift together.
    bench::Row win_row;
    win_row.compressor = std::string("TemporalWin_") + c.name;
    win_row.eb = c.eps;
    win_row.ratio = win;
    win_row.has_comp = win_row.has_decomp = win_row.has_psnr = false;
    win_row.has_violations = false;
    rows.push_back(win_row);
  }

  bench::print_rows("Temporal", rows);

  const int gate_rc = bench::finish();
  if (failures) return 1;
  return gate_rc;
}
