// Benchmark baselines and noise-aware perf-regression gating.
//
// A baseline (`BENCH_<tag>.json`) is a set of named metrics, each summarized
// as median-of-runs plus MAD (median absolute deviation) so later runs can be
// judged against the committed number with the noise of the committing
// machine taken into account. The RegressionGate compares a current run
// against a baseline and emits a verdict table (pass / warn / fail per
// metric) both human-readable and as JSON; the bench harness (`--baseline`,
// `--update-baseline`, `--gate`) and the `bench_regress` driver are the
// consumers. Exit-code convention: 3 on a failed gate, matching
// `pfpl verify`'s "bound violated" code.
//
// Document schema (see docs/OBSERVABILITY.md):
//   {
//     "schema": "pfpl-bench-baseline/1",
//     "tag": "baseline",
//     "meta": { "...": "free-form strings (host, date, config)" },
//     "metrics": {
//       "<name>": { "median": 123.4, "mad": 1.2, "n": 3,
//                   "better": "higher"|"lower", "unit": "MB/s",
//                   "advisory": false }
//     }
//   }
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace repro::obs {

/// Which direction of change is an improvement for a metric.
enum class Better : u8 { Higher = 0, Lower = 1 };

inline const char* to_string(Better b) { return b == Better::Higher ? "higher" : "lower"; }

/// One metric's summary: median of the run samples plus their MAD.
struct BaselineMetric {
  double median = 0.0;
  double mad = 0.0;   ///< median absolute deviation of the samples
  u64 n = 0;          ///< number of (finite) samples summarized
  Better better = Better::Higher;
  std::string unit;   ///< informational ("MB/s", "x", "dB", "us")
  /// Advisory metrics (latency quantiles estimated from coarse exponential
  /// buckets) can warn but never fail the gate.
  bool advisory = false;
};

/// A full baseline document.
struct BaselineDoc {
  static constexpr const char* kSchema = "pfpl-bench-baseline/1";

  std::string tag = "baseline";
  std::map<std::string, std::string> meta;
  std::map<std::string, BaselineMetric> metrics;

  std::string json() const;
  /// Parse a document; throws CompressionError on malformed JSON or a
  /// missing/mismatched "schema" marker.
  static BaselineDoc from_json(const std::string& text);
};

/// Load/save BENCH_<tag>.json documents. Throws CompressionError on I/O or
/// parse failure (a missing baseline file is an error the caller decides how
/// to surface — the harness prints it and exits 1, tests assert the throw).
class BaselineStore {
 public:
  static BaselineDoc load(const std::string& path);
  static void save(const std::string& path, const BaselineDoc& doc);
};

/// Median of the samples (0 when empty). Takes a copy: nth_element reorders.
double median_of(std::vector<double> xs);
/// Median absolute deviation around the median (0 when fewer than 2 samples).
double mad_of(const std::vector<double>& xs);

/// Summarize raw run samples into a BaselineMetric. Non-finite samples are
/// dropped (a NaN runtime must not poison the baseline); n reflects the
/// samples actually used — n == 0 means nothing valid was measured and the
/// gate will Skip the metric.
BaselineMetric summarize_samples(const std::vector<double>& samples, Better better,
                                 std::string unit = "", bool advisory = false);

/// Per-metric gate outcome, ordered by severity.
enum class Verdict : u8 {
  Pass = 0,     ///< within tolerance (or improved)
  New = 1,      ///< metric present now, absent from the baseline
  Missing = 2,  ///< metric in the baseline, absent from the current run
  Skip = 3,     ///< not judgeable (no valid samples on one side)
  Warn = 4,     ///< degraded beyond warn_fraction of the allowance
  Fail = 5,     ///< degraded beyond the allowance
};

const char* to_string(Verdict v);

struct GateRow {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double change_pct = 0.0;   ///< signed; positive means the value went up
  double allowed_pct = 0.0;  ///< tolerated degradation for this metric
  Better better = Better::Higher;
  Verdict verdict = Verdict::Pass;
  std::string note;          ///< why a non-Pass verdict was reached
};

struct GateConfig {
  /// Base tolerated degradation in percent (throughput/ratio style metrics).
  double pct = 25.0;
  /// Warn once degradation exceeds warn_fraction * allowed.
  double warn_fraction = 0.5;
  /// Noise allowance: the tolerance is max(pct, mad_k * relative-MAD). With
  /// MAD = 0 (all-identical runs, or single-sample metrics) this falls back
  /// to the flat pct bound.
  double mad_k = 4.0;
  /// Escalate New / Missing metrics from informational to Fail.
  bool fail_on_new = false;
  bool fail_on_missing = false;
};

struct GateResult {
  std::vector<GateRow> rows;  ///< baseline-key order; current-only rows last
  int passes = 0, warns = 0, fails = 0, skips = 0;

  bool failed() const { return fails > 0; }
  /// Process exit code under the gate convention (3 = fail, 0 otherwise).
  int exit_code() const { return failed() ? 3 : 0; }

  /// Human-readable verdict table (one row per metric, summary line last).
  std::string table() const;
  /// {"rows":[{metric,baseline,current,change_pct,allowed_pct,verdict,...}],
  ///  "passes":N,"warns":N,"fails":N,"skips":N}
  std::string json() const;
};

/// Compare a current run against a baseline with noise-aware thresholds.
class RegressionGate {
 public:
  explicit RegressionGate(GateConfig cfg = {}) : cfg_(cfg) {}

  GateResult compare(const BaselineDoc& baseline,
                     const std::map<std::string, BaselineMetric>& current) const;

  const GateConfig& config() const { return cfg_; }

 private:
  GateConfig cfg_;
};

}  // namespace repro::obs
