// Reconstruction-quality metrics and error-bound verification.
//
// This is the *external* judge used by the test suite and by the Table III
// bound-violation probe: it re-checks every reconstructed value against the
// requested bound, independent of any compressor's internal bookkeeping.
// Verification precision follows the same convention as the PFPL quantizers
// (double for float data, long double for double data) — see
// core/quantizers.hpp.
//
// PSNR is computed the way lossy-compression papers (and Figure 16) do:
//   PSNR = 20*log10(value_range) - 10*log10(MSE)
// and is always finite so it can flow into JSON artifacts unmodified:
// perfect reconstruction (MSE = 0) reports kPsnrCapDb, and a zero-range
// (constant) field with any error reports 0 dB — the range-based formula is
// undefined there, and the old +inf silently hid real error (the
// `zero_range` flag makes the degenerate case explicit).
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace repro::metrics {

/// Finite PSNR ceiling reported for exact reconstruction (MSE = 0).
inline constexpr double kPsnrCapDb = 999.0;

struct ErrorStats {
  double max_abs = 0.0;       ///< max |orig - recon| over finite pairs
  double max_rel = 0.0;       ///< max relative error over nonzero finite origs
  double mse = 0.0;           ///< mean squared error over finite pairs
  double psnr = 0.0;          ///< range-based PSNR (dB), always finite:
                              ///< kPsnrCapDb when MSE = 0, 0 when the field
                              ///< is constant (zero range) but MSE > 0
  double value_range = 0.0;   ///< max - min of the finite original values
  bool zero_range = false;    ///< the finite originals span no range
  std::size_t count = 0;      ///< values compared
  std::size_t nonfinite_mismatches = 0;  ///< NaN<->number or inf sign flips
  std::size_t sign_flips = 0;            ///< finite values whose sign flipped
};

ErrorStats compute_stats(std::span<const float> orig, std::span<const float> recon);
ErrorStats compute_stats(std::span<const double> orig, std::span<const double> recon);

/// Count of values violating the given point-wise bound. 0 means the bound
/// held everywhere. `eb` selects the check:
///   ABS: |o - r| <= eps
///   REL: same sign and |o|/(1+eps) <= |r| <= |o|*(1+eps)
///        (zero must reconstruct to zero, NaN to NaN, inf to same-signed inf)
///   NOA: |o - r| <= eps * (max_finite(o) - min_finite(o))
std::size_t count_violations(std::span<const float> orig, std::span<const float> recon,
                             double eps, EbType eb);
std::size_t count_violations(std::span<const double> orig, std::span<const double> recon,
                             double eps, EbType eb);

/// Compression ratio, higher is better (paper Section IV).
inline double compression_ratio(std::size_t uncompressed_bytes, std::size_t compressed_bytes) {
  return compressed_bytes ? static_cast<double>(uncompressed_bytes) /
                                static_cast<double>(compressed_bytes)
                          : 0.0;
}

/// Geometric mean; the paper summarizes per-suite results with nested
/// geometric means (Section IV).
double geomean(std::span<const double> xs);

}  // namespace repro::metrics
