#include "bits/zerobyte.hpp"

#include <array>

namespace repro::bits {
namespace {

inline std::size_t bitmap_bytes(std::size_t n) { return (n + 7) / 8; }

// Build the zero-byte bitmap of `data` (bit set = byte nonzero) and collect
// the nonzero bytes.
void build_zero_bitmap(const u8* data, std::size_t n, std::vector<u8>& bitmap,
                       std::vector<u8>& survivors) {
  bitmap.assign(bitmap_bytes(n), 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] != 0) {
      bitmap[i >> 3] |= static_cast<u8>(1u << (i & 7));
      survivors.push_back(data[i]);
    }
  }
}

// Build the repeat bitmap of `data` (bit set = byte differs from its
// predecessor; predecessor of byte 0 is 0x00) and collect non-repeating bytes.
void build_repeat_bitmap(const u8* data, std::size_t n, std::vector<u8>& bitmap,
                         std::vector<u8>& survivors) {
  bitmap.assign(bitmap_bytes(n), 0);
  u8 prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] != prev) {
      bitmap[i >> 3] |= static_cast<u8>(1u << (i & 7));
      survivors.push_back(data[i]);
      prev = data[i];
    }
  }
}

}  // namespace

void zerobyte_encode(const u8* data, std::size_t n, std::vector<u8>& out) {
  // Level 0: zero-byte bitmap over the data.
  std::array<std::vector<u8>, kZeroByteLevels + 1> bitmaps;
  std::array<std::vector<u8>, kZeroByteLevels> repeats;  // R_k = survivors of B_k
  std::vector<u8> nonzero;
  build_zero_bitmap(data, n, bitmaps[0], nonzero);
  for (int lvl = 0; lvl < kZeroByteLevels; ++lvl) {
    build_repeat_bitmap(bitmaps[lvl].data(), bitmaps[lvl].size(), bitmaps[lvl + 1],
                        repeats[lvl]);
  }
  // Emit top-level bitmap, then R_{levels-1} .. R_0, then the nonzero bytes —
  // the order the decoder unwinds them.
  const std::vector<u8>& top = bitmaps[kZeroByteLevels];
  out.insert(out.end(), top.begin(), top.end());
  for (int lvl = kZeroByteLevels - 1; lvl >= 0; --lvl)
    out.insert(out.end(), repeats[lvl].begin(), repeats[lvl].end());
  out.insert(out.end(), nonzero.begin(), nonzero.end());
}

std::size_t zerobyte_decode(const u8* in, std::size_t in_size, u8* data, std::size_t n) {
  // Sizes of every bitmap level are derivable from n alone.
  std::array<std::size_t, kZeroByteLevels + 1> sizes;
  sizes[0] = bitmap_bytes(n);
  for (int lvl = 1; lvl <= kZeroByteLevels; ++lvl) sizes[lvl] = bitmap_bytes(sizes[lvl - 1]);

  std::size_t pos = 0;
  auto take = [&](std::size_t k) {
    if (pos + k > in_size) throw CompressionError("zerobyte_decode: truncated stream");
    const u8* p = in + pos;
    pos += k;
    return p;
  };

  // Read the top-level bitmap, then reconstruct each lower bitmap in turn.
  const u8* top = take(sizes[kZeroByteLevels]);
  std::vector<u8> upper(top, top + sizes[kZeroByteLevels]);
  for (int lvl = kZeroByteLevels - 1; lvl >= 0; --lvl) {
    std::vector<u8> cur(sizes[lvl]);
    // First pass: count survivors so we can take them in one slice.
    std::size_t survivors = 0;
    for (std::size_t i = 0; i < sizes[lvl]; ++i)
      survivors += (upper[i >> 3] >> (i & 7)) & 1u;
    const u8* r = take(survivors);
    u8 prev = 0;
    std::size_t ri = 0;
    for (std::size_t i = 0; i < sizes[lvl]; ++i) {
      if ((upper[i >> 3] >> (i & 7)) & 1u) prev = r[ri++];
      cur[i] = prev;
    }
    upper = std::move(cur);
  }

  // `upper` is now the zero-byte bitmap B0; expand the data bytes.
  std::size_t nz = 0;
  for (std::size_t i = 0; i < n; ++i) nz += (upper[i >> 3] >> (i & 7)) & 1u;
  const u8* z = take(nz);
  std::size_t zi = 0;
  for (std::size_t i = 0; i < n; ++i)
    data[i] = ((upper[i >> 3] >> (i & 7)) & 1u) ? z[zi++] : u8{0};
  return pos;
}

}  // namespace repro::bits
