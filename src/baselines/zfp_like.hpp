// ZFP-like baseline: block-transform compression (Lindstrom, TVCG 2014;
// paper Section VI).
//
// Per 4^d block: block-floating-point integer conversion (common exponent),
// the ZFP forward lifting transform along each dimension, negabinary
// mapping, and bit-plane coding down to an accuracy-derived cutoff.
//
// Table III profile: ABS supported but not guaranteed ('○' — the block
// transform's worst-case amplification is not re-checked per value), REL via
// bit-plane truncation, no NOA, float+double, CPU only. As the paper notes,
// ZFP "often over-preserves the compression errors", costing ratio.
#pragma once

#include "common/compressor.hpp"

namespace repro::baselines {

class ZfpLikeCompressor final : public Compressor {
 public:
  std::string name() const override { return "ZFP_Serial"; }
  Features features() const override {
    Features f;
    f.abs = true;
    f.rel = true;
    f.f32 = f.f64 = true;
    f.cpu = true;
    f.guarantee_abs = false;  // Table III '○'
    // Table III nominally prints a checkmark for ZFP REL, but the text notes
    // "ZFP does not conform to the error bound due to its different bounding
    // technique" (Section V-C) — empirically it is best-effort, so the
    // capability record says so; the Table III bench prints the paper glyph.
    f.guarantee_rel = false;
    return f;
  }
  Bytes compress(const Field& in, double eps, EbType eb) const override;
  std::vector<u8> decompress(const Bytes& stream) const override;
};

}  // namespace repro::baselines
