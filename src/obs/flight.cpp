#include "obs/flight.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "obs/crash.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace repro::obs {
namespace {

u64 wall_ms_now() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::system_clock::now().time_since_epoch())
                              .count());
}

/// Last `max_events` spans by start time, rendered small — the crash
/// report's "what was the process doing" tail.
std::string trace_tail_json(std::size_t max_events) {
  std::vector<SpanEvent> events = TraceRecorder::global().events();
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) { return a.start_ns < b.start_ns; });
  if (events.size() > max_events)
    events.erase(events.begin(), events.end() - static_cast<std::ptrdiff_t>(max_events));
  JsonWriter w;
  w.begin_array();
  for (const SpanEvent& e : events) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("tid", static_cast<unsigned long long>(e.tid));
    w.kv("start_us", static_cast<unsigned long long>(e.start_ns / 1000));
    w.kv("dur_us", static_cast<unsigned long long>(e.dur_ns / 1000));
    if (e.request_id) w.kv("request_id", static_cast<unsigned long long>(e.request_id));
    w.end_object();
  }
  w.end_array();
  return w.take();
}

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* f = new FlightRecorder();  // leaked: crash paths may be late
  return *f;
}

void FlightRecorder::configure(Options o) {
  std::lock_guard<std::mutex> lock(m_);
  if (running_) return;  // configure-while-running is a caller bug; keep state sane
  if (o.interval_ms <= 0) o.interval_ms = 1000;
  if (o.depth <= 0) o.depth = 1;
  opts_ = std::move(o);
  while (ring_.size() > static_cast<std::size_t>(opts_.depth)) ring_.pop_front();
  Watchdog::global().arm(opts_.stall_ms);
}

void FlightRecorder::start() {
  std::lock_guard<std::mutex> lock(m_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void FlightRecorder::stop() {
  {
    std::lock_guard<std::mutex> lock(m_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(m_);
  running_ = false;
}

bool FlightRecorder::running() const {
  std::lock_guard<std::mutex> lock(m_);
  return running_;
}

void FlightRecorder::run_loop() {
  // Watchdog checks want finer granularity than the snapshot cadence when a
  // tight stall threshold is configured.
  u64 tick_ms = static_cast<u64>(opts_.interval_ms);
  if (opts_.stall_ms > 0)
    tick_ms = std::min<u64>(tick_ms, std::max<u64>(10, opts_.stall_ms / 2));
  u64 next_sample_ms = 0;  // sample immediately on startup
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait_for(lock, std::chrono::milliseconds(tick_ms),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    const u64 now = wall_ms_now();
    if (now >= next_sample_ms) {
      sample_now();
      next_sample_ms = now + static_cast<u64>(opts_.interval_ms);
    } else if (opts_.stall_ms > 0) {
      // Off-cadence tick: watchdog check only (sample_now also checks).
      const std::vector<Watchdog::Stall> stalls = Watchdog::global().check();
      if (!stalls.empty() && !opts_.crash_dir.empty()) {
        JsonWriter w;
        w.begin_array();
        for (const Watchdog::Stall& st : stalls) {
          w.begin_object();
          w.kv("slot", st.slot);
          w.kv("busy_ms", static_cast<unsigned long long>(st.busy_ms));
          w.kv("detail", static_cast<unsigned long long>(st.detail));
          w.end_object();
        }
        w.end_array();
        write_stall_dump(w.take());
      }
    }
  }
}

void FlightRecorder::sample_now() {
  Snapshot s;
  s.wall_ms = wall_ms_now();
  s.metrics = MetricsRegistry::global().json();
  if (opts_.extra) s.extra = opts_.extra();

  std::string crash_body;
  {
    std::lock_guard<std::mutex> lock(m_);
    s.seq = ++seq_;
    ring_.push_back(std::move(s));
    while (ring_.size() > static_cast<std::size_t>(std::max(opts_.depth, 1)))
      ring_.pop_front();
    if (!opts_.crash_dir.empty()) crash_body = render_crash_body_locked();
  }
  if (!crash_body.empty()) set_crash_body(crash_body);

  const std::vector<Watchdog::Stall> stalls = Watchdog::global().check();
  if (!stalls.empty() && !opts_.crash_dir.empty()) {
    JsonWriter w;
    w.begin_array();
    for (const Watchdog::Stall& st : stalls) {
      w.begin_object();
      w.kv("slot", st.slot);
      w.kv("busy_ms", static_cast<unsigned long long>(st.busy_ms));
      w.kv("detail", static_cast<unsigned long long>(st.detail));
      w.end_object();
    }
    w.end_array();
    write_stall_dump(w.take());
  }
}

void FlightRecorder::append_snapshots_locked(std::string& out,
                                             std::size_t max_snapshots) const {
  JsonWriter w;
  w.begin_array();
  const std::size_t skip =
      ring_.size() > max_snapshots ? ring_.size() - max_snapshots : 0;
  std::size_t i = 0;
  for (const Snapshot& s : ring_) {
    if (i++ < skip) continue;
    w.begin_object();
    w.kv("seq", static_cast<unsigned long long>(s.seq));
    w.kv("ts_ms", static_cast<unsigned long long>(s.wall_ms));
    w.key("metrics").raw(s.metrics);
    if (!s.extra.empty()) w.key("extra").raw(s.extra);
    w.end_object();
  }
  w.end_array();
  out += w.take();
}

std::string FlightRecorder::render_crash_body_locked() const {
  std::string body = minimal_crash_body();
  body += ",\"flight\":{\"interval_ms\":" + std::to_string(opts_.interval_ms) +
          ",\"depth\":" + std::to_string(opts_.depth) +
          ",\"stall_ms\":" + std::to_string(opts_.stall_ms) +
          ",\"stalls_detected\":" + std::to_string(Watchdog::global().stalls_detected()) +
          "},\"snapshots\":";
  // The crash body carries the last few snapshots, not the whole ring: the
  // handler's write must stay bounded, and /history serves the full depth.
  append_snapshots_locked(body, 3);
  body += ",\"trace_tail\":" + trace_tail_json(32);
  return body;
}

void FlightRecorder::write_stall_dump(const std::string& stalls_json) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(m_);
    path = opts_.crash_dir + "/stall-" + std::to_string(++stall_dumps_) + ".json";
  }
  std::string doc = "{\"schema\":\"pfpl-stall/1\",\"stalls\":" + stalls_json +
                    ",\"history\":" + history_json() + "}\n";
  std::error_code ec;
  std::filesystem::create_directories(opts_.crash_dir, ec);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return;  // diagnostics degrade silently, never fatal
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
}

std::string FlightRecorder::history_json() const {
  std::lock_guard<std::mutex> lock(m_);
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "pfpl-flight/1");
  w.kv("running", running_);
  w.kv("interval_ms", static_cast<unsigned long long>(
                          opts_.interval_ms > 0 ? opts_.interval_ms : 0));
  w.kv("depth", static_cast<unsigned long long>(opts_.depth > 0 ? opts_.depth : 0));
  w.kv("stall_ms", static_cast<unsigned long long>(opts_.stall_ms));
  w.kv("stalls_detected",
       static_cast<unsigned long long>(Watchdog::global().stalls_detected()));
  w.end_object();
  std::string head = w.take();
  head.pop_back();  // replace the closing brace with the snapshot array
  head += ",\"snapshots\":";
  append_snapshots_locked(head, ring_.size());
  head += "}";
  return head;
}

std::size_t FlightRecorder::snapshot_count() const {
  std::lock_guard<std::mutex> lock(m_);
  return ring_.size();
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(m_);
  ring_.clear();
  seq_ = 0;
}

}  // namespace repro::obs
