// Tests for the observability subsystem: metric correctness under
// concurrency, histogram bucketing, Chrome-trace well-formedness (parsed
// back with the obs JSON parser), the disabled-mode zero-footprint
// guarantee, and the ThreadPool scheduler-counter invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "obs/control.hpp"
#include "obs/event_log.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "svc/stats.hpp"
#include "svc/thread_pool.hpp"

using namespace repro;

namespace {

/// Every test must leave the global switch the way it found it (other tests
/// in this binary assert on both modes).
struct ObsGuard {
  explicit ObsGuard(bool on) : prev(obs::enabled()) { obs::set_enabled(on); }
  ~ObsGuard() { obs::set_enabled(prev); }
  bool prev;
};

}  // namespace

// ---------------------------------------------------------------- JSON -----

TEST(ObsJson, WriterEscapesAndParserRoundTrips) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("plain", "abc");
  w.kv("quoted", "a\"b\\c\nd\te");
  w.kv("num", 1.5);
  w.kv("neg", -3LL);
  w.kv("flag", true);
  w.key("arr").begin_array().value(1).value(2).end_array();
  w.end_object();

  obs::JsonValue v = obs::parse_json(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("plain").str, "abc");
  EXPECT_EQ(v.at("quoted").str, "a\"b\\c\nd\te");
  EXPECT_DOUBLE_EQ(v.at("num").num, 1.5);
  EXPECT_DOUBLE_EQ(v.at("neg").num, -3);
  EXPECT_TRUE(v.at("flag").b);
  ASSERT_EQ(v.at("arr").arr.size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("arr").arr[1].num, 2);
}

TEST(ObsJson, ParserRejectsMalformed) {
  EXPECT_THROW(obs::parse_json("{"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("[1,2,]x"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("\"unterminated"), std::runtime_error);
  // Depth bomb must throw, not overflow the stack.
  std::string deep(1000, '[');
  EXPECT_THROW(obs::parse_json(deep), std::runtime_error);
}

// ------------------------------------------------------------- metrics -----

TEST(ObsMetrics, CounterSumsExactlyAcrossThreads) {
  ObsGuard guard(true);
  obs::Counter c;
  constexpr int kThreads = 8, kIncrements = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<u64>(kThreads) * kIncrements);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  ObsGuard guard(true);
  obs::Histogram h({10, 100, 1000});
  // Boundary semantics: bucket i counts v <= bounds[i]; last bucket = rest.
  EXPECT_EQ(h.bucket_of(0), 0u);
  EXPECT_EQ(h.bucket_of(10), 0u);   // inclusive upper bound
  EXPECT_EQ(h.bucket_of(11), 1u);
  EXPECT_EQ(h.bucket_of(100), 1u);
  EXPECT_EQ(h.bucket_of(101), 2u);
  EXPECT_EQ(h.bucket_of(1000), 2u);
  EXPECT_EQ(h.bucket_of(1001), 3u);  // overflow bucket

  for (u64 v : {u64{5}, u64{10}, u64{11}, u64{100}, u64{5000}}) h.record(v);
  std::vector<u64> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5126u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 5000u);
  EXPECT_DOUBLE_EQ(h.mean(), 5126.0 / 5.0);
}

TEST(ObsMetrics, HistogramQuantiles) {
  ObsGuard guard(true);
  obs::Histogram empty({10, 100});
  EXPECT_EQ(empty.quantile(0.5), 0.0);  // no samples, nothing to estimate

  // All-identical samples: the interpolation clamps to the observed range,
  // so every quantile is exactly the value.
  obs::Histogram flat({10, 100});
  for (int i = 0; i < 100; ++i) flat.record(7);
  EXPECT_EQ(flat.p50(), 7.0);
  EXPECT_EQ(flat.p95(), 7.0);
  EXPECT_EQ(flat.p99(), 7.0);

  // Bimodal: 50 samples at 5 (bucket <=10), 50 at 500 (bucket 100..1000,
  // clamped above by max=500). The estimates interpolate within the bucket
  // that holds the target rank.
  obs::Histogram h({10, 100, 1000});
  for (int i = 0; i < 50; ++i) h.record(5);
  for (int i = 0; i < 50; ++i) h.record(500);
  EXPECT_DOUBLE_EQ(h.p50(), 10.0);   // rank 50 = last sample of bucket 0
  EXPECT_DOUBLE_EQ(h.p95(), 460.0);  // 100 + 0.9 * (500 - 100)
  EXPECT_DOUBLE_EQ(h.p99(), 492.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 500.0);  // == max()
  // Monotone in q and bounded by the observed range.
  double prev = h.quantile(0.0);
  EXPECT_GE(prev, 5.0);
  for (double q : {0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, 500.0);
    prev = v;
  }

  // The registry JSON exposes the quantiles (only once populated).
  obs::MetricsRegistry reg;
  reg.histogram("lat_us", {10, 100}).record(42);
  obs::JsonValue v = obs::parse_json(reg.json());
  EXPECT_TRUE(v.at("histograms").at("lat_us").has("p99"));
}

TEST(ObsMetrics, HistogramRejectsNonIncreasingBounds) {
  EXPECT_THROW(obs::Histogram({10, 10}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({10, 5}), std::invalid_argument);
}

TEST(ObsMetrics, HistogramConcurrentRecordsSumExactly) {
  ObsGuard guard(true);
  obs::Histogram h({8, 64});
  constexpr int kThreads = 6, kRecords = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kRecords; ++i) h.record(static_cast<u64>(t));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<u64>(kThreads) * kRecords);
  u64 total = 0;
  for (u64 b : h.bucket_counts()) total += b;
  EXPECT_EQ(total, h.count());
}

TEST(ObsMetrics, GaugeTracksValueAndPeak) {
  ObsGuard guard(true);
  obs::Gauge g;
  g.set(5);
  g.add(10);
  g.add(-12);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.peak(), 15);
}

TEST(ObsMetrics, RegistryGetOrCreateIsStableAndJsonParses) {
  ObsGuard guard(true);
  auto& r = obs::MetricsRegistry::global();
  obs::Counter& a = r.counter("test.registry.counter");
  obs::Counter& b = r.counter("test.registry.counter");
  EXPECT_EQ(&a, &b);  // same name -> same metric
  a.add(7);
  r.histogram("test.registry.hist").record(42);
  obs::JsonValue v = obs::parse_json(r.json());
  EXPECT_GE(v.at("counters").at("test.registry.counter").num, 7);
  EXPECT_TRUE(v.at("histograms").has("test.registry.hist"));
}

TEST(ObsMetrics, DisabledModeRecordsNothing) {
  ObsGuard guard(false);
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h({10});
  c.add(100);
  g.set(5);
  h.record(3);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

// --------------------------------------------------------------- spans -----

TEST(ObsTrace, NestedSpansProduceWellFormedChromeJson) {
  ObsGuard guard(true);
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  {
    OBS_SPAN("outer");
    {
      OBS_SPAN("inner");
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    }
    OBS_SPAN("sibling");
  }
  ASSERT_EQ(rec.event_count(), 3u);

  obs::JsonValue doc = obs::parse_json(rec.chrome_json());
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  const auto& evs = doc.at("traceEvents").arr;
  ASSERT_EQ(evs.size(), 3u);
  for (const obs::JsonValue& e : evs) {
    // The keys Perfetto/chrome://tracing require of a complete event.
    for (const char* k : {"ph", "ts", "dur", "tid", "name"}) ASSERT_TRUE(e.has(k)) << k;
    EXPECT_EQ(e.at("ph").str, "X");
    EXPECT_GE(e.at("dur").num, 0);
  }

  // Nesting: outer contains inner in time, and depths reflect the tree.
  std::vector<obs::SpanEvent> raw = rec.events();
  auto find = [&](const std::string& n) {
    return *std::find_if(raw.begin(), raw.end(),
                         [&](const obs::SpanEvent& e) { return e.name == n; });
  };
  obs::SpanEvent outer = find("outer"), inner = find("inner"), sib = find("sibling");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(sib.depth, 1u);
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_GE(outer.start_ns + outer.dur_ns, inner.start_ns + inner.dur_ns);
  rec.clear();
}

TEST(ObsTrace, TextTreeAggregatesSiblingRuns) {
  ObsGuard guard(true);
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  {
    OBS_SPAN("parent");
    for (int i = 0; i < 5; ++i) OBS_SPAN("child");
  }
  std::string tree = rec.text_tree();
  EXPECT_NE(tree.find("parent"), std::string::npos);
  EXPECT_NE(tree.find("child"), std::string::npos);
  EXPECT_NE(tree.find("x5"), std::string::npos);  // 5 children collapsed
  rec.clear();
}

TEST(ObsTrace, SpansFromMultipleThreadsGetDistinctTids) {
  ObsGuard guard(true);
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t)
    threads.emplace_back([] { OBS_SPAN("worker_span"); });
  for (auto& t : threads) t.join();
  std::vector<obs::SpanEvent> evs = rec.events();
  ASSERT_EQ(evs.size(), 3u);
  std::set<u32> tids;
  for (const obs::SpanEvent& e : evs) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 3u);
  EXPECT_EQ(rec.thread_count(), 3u);
  rec.clear();
}

TEST(ObsTrace, DisabledModeRecordsNoSpans) {
  ObsGuard guard(false);
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  {
    OBS_SPAN("should_not_exist");
    obs::ScopedSpan dynamic(std::string("also_not"));
  }
  EXPECT_EQ(rec.event_count(), 0u);
  // No thread shows up as having recorded anything: the disabled path never
  // touches (or allocates) a thread buffer.
  EXPECT_EQ(rec.thread_count(), 0u);
}

// -------------------------------------------------------------- report -----

TEST(ObsReport, FoldsMetricsSpansAndSections) {
  ObsGuard guard(true);
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  obs::RunReport& report = obs::RunReport::global();
  report.clear();
  { OBS_SPAN("report_span"); }
  report.set_meta("tool", "test");
  report.add_run_times("case/compress", {1.5, 2.5, 2.0});
  report.add_section("custom", "{\"answer\":42}");

  obs::JsonValue v = obs::parse_json(report.json());
  EXPECT_EQ(v.at("meta").at("tool").str, "test");
  ASSERT_TRUE(v.at("spans").has("report_span"));
  EXPECT_DOUBLE_EQ(v.at("spans").at("report_span").at("count").num, 1);
  ASSERT_EQ(v.at("run_times_ms").at("case/compress").arr.size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("sections").at("custom").at("answer").num, 42);
  report.clear();
  rec.clear();
}

TEST(ObsReport, SvcStatsJsonAndSummary) {
  svc::SvcStats st;
  st.jobs = 3;
  st.jobs_failed = 1;
  st.chunks = 10;
  st.bytes_in = 1000;
  st.bytes_out = 400;
  st.threads = 2;
  st.wall_ms = 5;
  // The two-step format keeps the failed part intact (the old one-expression
  // form depended on a temporary's lifetime).
  std::string s = st.summary();
  EXPECT_NE(s.find("jobs=3 failed=1"), std::string::npos) << s;
  obs::JsonValue v = obs::parse_json(st.json());
  EXPECT_DOUBLE_EQ(v.at("jobs").num, 3);
  EXPECT_DOUBLE_EQ(v.at("jobs_failed").num, 1);
  EXPECT_DOUBLE_EQ(v.at("ratio").num, 2.5);
}

// ----------------------------------------------------- timer satellite -----

TEST(ObsTimer, MedianRuntimeRecordsPerRunTimes) {
  std::vector<double> per_run;
  int calls = 0;
  double med = median_runtime([&] { ++calls; }, 5, &per_run);
  EXPECT_EQ(calls, 5);
  ASSERT_EQ(per_run.size(), 5u);
  std::vector<double> sorted = per_run;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(med, sorted[2]);
}

// ------------------------------------------------- ThreadPool counters -----

TEST(ObsThreadPool, CountersConsistentAfterRandomizedBurst) {
  ObsGuard guard(true);
  constexpr unsigned kWorkers = 4;
  constexpr int kTasks = 400;
  svc::ThreadPool pool(kWorkers, /*queue_capacity=*/64);
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> spin(0, 2000);
  std::atomic<int> ran{0};
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    int work = spin(rng);
    futures.push_back(pool.submit([&ran, work] {
      volatile int sink = 0;
      for (int j = 0; j < work; ++j) sink = sink + j;
      return ran.fetch_add(1);
    }));
  }
  for (auto& f : futures) f.get();
  pool.wait_idle();

  svc::ThreadPool::Counters c = pool.counters();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(c.submitted, static_cast<u64>(kTasks));
  EXPECT_EQ(c.executed, c.submitted);  // every accepted task ran
  EXPECT_LE(c.stolen, c.executed);     // steals are a subset of executions
  EXPECT_LE(c.peak_pending, 64u);      // bounded queue held
  pool.shutdown();
  // Counters are stable after shutdown.
  EXPECT_EQ(pool.counters().executed, c.executed);
}

// ------------------------------------------------ request-scoped tracing ---

TEST(ObsTraceContext, NestsAndRestores) {
  EXPECT_EQ(obs::TraceContext::current(), 0u);
  {
    obs::TraceContext::Scope outer(7);
    EXPECT_EQ(obs::TraceContext::current(), 7u);
    {
      obs::TraceContext::Scope inner(9);
      EXPECT_EQ(obs::TraceContext::current(), 9u);
    }
    EXPECT_EQ(obs::TraceContext::current(), 7u);
  }
  EXPECT_EQ(obs::TraceContext::current(), 0u);
}

TEST(ObsTraceContext, SpanCarriesRequestIdIntoChromeArgs) {
  ObsGuard guard(true);
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  {
    obs::TraceContext::Scope ctx(4242);
    OBS_SPAN("ctx_span");
  }
  { OBS_SPAN("no_ctx_span"); }

  std::vector<obs::SpanEvent> evs = rec.events();
  ASSERT_EQ(evs.size(), 2u);
  for (const obs::SpanEvent& e : evs)
    EXPECT_EQ(e.request_id, e.name == "ctx_span" ? 4242u : 0u) << e.name;

  obs::JsonValue doc = obs::parse_json(rec.chrome_json());
  for (const obs::JsonValue& ev : doc.at("traceEvents").arr) {
    if (ev.at("name").str == "ctx_span") {
      ASSERT_TRUE(ev.has("args"));
      EXPECT_DOUBLE_EQ(ev.at("args").at("request_id").num, 4242);
    } else {
      // Context-free spans carry no args at all — id 0 means "no context"
      // and is never emitted.
      EXPECT_FALSE(ev.has("args")) << ev.at("name").str;
    }
  }
  rec.clear();
}

// ---------------------------------------------------- metrics exposition ---

TEST(ObsExposition, PrometheusFamilyMangling) {
  EXPECT_EQ(obs::prometheus_family("net.request_us"), "pfpl_net_request_us");
  EXPECT_EQ(obs::prometheus_family("Svc.Pool-Depth"), "pfpl_svc_pool_depth");
}

TEST(ObsExposition, PrometheusTextWellFormed) {
  ObsGuard guard(true);
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("expo.test.count").add(3);
  reg.gauge("expo.test.depth").set(5);
  obs::Histogram& h = reg.histogram("expo.test_us", {10, 100});
  h.record(5);
  h.record(50);
  h.record(500);

  const std::string text = obs::prometheus_text();
  // No duplicate TYPE families, and every sample line's value is a number.
  std::set<std::string> families;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string fam = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(families.insert(fam).second) << "duplicate family " << fam;
      continue;
    }
    if (line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(sp + 1))) << line;
  }
  // Counters get the _total suffix; gauges a _peak companion.
  EXPECT_NE(text.find("pfpl_expo_test_count_total 3"), std::string::npos);
  EXPECT_NE(text.find("pfpl_expo_test_depth 5"), std::string::npos);
  EXPECT_NE(text.find("pfpl_expo_test_depth_peak 5"), std::string::npos);
  // Histograms are cumulative with a +Inf bucket equal to _count.
  EXPECT_NE(text.find("pfpl_expo_test_us_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("pfpl_expo_test_us_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("pfpl_expo_test_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("pfpl_expo_test_us_count 3"), std::string::npos);
  EXPECT_NE(text.find("pfpl_expo_test_us_sum 555"), std::string::npos);
}

TEST(ObsExposition, MetricsJsonDocParsesWithExtras) {
  const std::string doc = obs::metrics_json_doc("\"extra\":{\"x\":1}");
  obs::JsonValue v = obs::parse_json(doc);
  EXPECT_EQ(v.at("schema").str, "pfpl-metrics/1");
  ASSERT_TRUE(v.at("metrics").is_object());
  EXPECT_TRUE(v.at("metrics").has("counters"));
  EXPECT_DOUBLE_EQ(v.at("extra").at("x").num, 1);
  // And without extras the document is still a valid close.
  obs::JsonValue bare = obs::parse_json(obs::metrics_json_doc());
  EXPECT_TRUE(bare.has("metrics"));
}

TEST(ObsExposition, ZeroObservationHistogramStaysWellFormed) {
  // A histogram family that was registered but never recorded (a server that
  // saw no slow requests, a decode-only run) must still expose a complete,
  // parseable family — zero buckets, zero count — not a truncated one.
  ObsGuard guard(true);
  auto& reg = obs::MetricsRegistry::global();
  (void)reg.histogram("expo.empty_us", {10, 100});

  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("pfpl_expo_empty_us_bucket{le=\"10\"} 0"), std::string::npos);
  EXPECT_NE(text.find("pfpl_expo_empty_us_bucket{le=\"+Inf\"} 0"), std::string::npos);
  EXPECT_NE(text.find("pfpl_expo_empty_us_count 0"), std::string::npos);
  EXPECT_NE(text.find("pfpl_expo_empty_us_sum 0"), std::string::npos);

  // JSON side: count 0, no min/max/mean/pXX keys (they would be lies), but
  // bounds + buckets present so a scraper can still learn the layout.
  obs::JsonValue v = obs::parse_json(obs::metrics_json_doc());
  const obs::JsonValue& h = v.at("metrics").at("histograms").at("expo.empty_us");
  EXPECT_DOUBLE_EQ(h.at("count").num, 0);
  EXPECT_FALSE(h.has("p50"));
  EXPECT_FALSE(h.has("mean"));
  ASSERT_EQ(h.at("bounds").arr.size(), 2u);
  ASSERT_EQ(h.at("buckets").arr.size(), 3u);
}

TEST(ObsExposition, GaugeExposesCurrentAndPeakSeparately) {
  ObsGuard guard(true);
  auto& reg = obs::MetricsRegistry::global();
  obs::Gauge& g = reg.gauge("expo.peaky.depth");
  g.set(10);
  g.set(3);  // current drops, peak must not

  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("pfpl_expo_peaky_depth 3"), std::string::npos);
  EXPECT_NE(text.find("pfpl_expo_peaky_depth_peak 10"), std::string::npos);

  obs::JsonValue v = obs::parse_json(obs::metrics_json_doc());
  const obs::JsonValue& gj = v.at("metrics").at("gauges").at("expo.peaky.depth");
  EXPECT_DOUBLE_EQ(gj.at("value").num, 3);
  EXPECT_DOUBLE_EQ(gj.at("peak").num, 10);
}

// ------------------------------------------------------------ event log ----

TEST(ObsEventLog, LevelNamesRoundTrip) {
  obs::LogLevel lvl = obs::LogLevel::Info;
  EXPECT_TRUE(obs::parse_log_level("warn", lvl));
  EXPECT_EQ(lvl, obs::LogLevel::Warn);
  EXPECT_STREQ(obs::to_string(obs::LogLevel::Error), "error");
  EXPECT_FALSE(obs::parse_log_level("loud", lvl));
}

TEST(ObsEventLog, LevelFilterRateLimitAndParseableLines) {
  const std::string path = ::testing::TempDir() + "pfpl_event_log_test.jsonl";
  std::remove(path.c_str());
  obs::EventLog log;
  obs::EventLog::Options o;
  o.path = path;
  o.level = obs::LogLevel::Info;
  o.rate_per_s = 2.0;  // burst capacity = 4 lines
  log.configure(o);

  EXPECT_FALSE(log.would_log(obs::LogLevel::Debug));
  EXPECT_FALSE(log.emit(obs::LogLevel::Debug, "filtered"));
  u64 written = 0;
  for (int i = 0; i < 10; ++i)
    if (log.emit(obs::LogLevel::Warn, "evt", "{\"i\":" + std::to_string(i) + "}"))
      ++written;
  EXPECT_EQ(written, 4u);  // token bucket: 2/s rate, 2x burst
  EXPECT_EQ(log.emitted(), written);
  EXPECT_EQ(log.dropped(), 10u - written);

  // Every line on disk is one parseable JSON object with the envelope keys.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  u64 lines = 0;
  while (std::getline(in, line)) {
    obs::JsonValue v = obs::parse_json(line);
    EXPECT_TRUE(v.has("ts_ms"));
    EXPECT_EQ(v.at("level").str, "warn");
    EXPECT_EQ(v.at("event").str, "evt");
    EXPECT_DOUBLE_EQ(v.at("fields").at("i").num, static_cast<double>(lines));
    ++lines;
  }
  EXPECT_EQ(lines, written);
  std::remove(path.c_str());
}

TEST(ObsThreadPool, WaitAndRunHistogramsPopulateWhenEnabled) {
  ObsGuard guard(true);
  auto& r = obs::MetricsRegistry::global();
  obs::Histogram& wait = r.histogram("svc.pool.task_wait_us");
  obs::Histogram& run = r.histogram("svc.pool.task_run_us");
  const u64 wait_before = wait.count(), run_before = run.count();
  {
    svc::ThreadPool pool(2);
    std::vector<std::future<void>> fs;
    for (int i = 0; i < 32; ++i) fs.push_back(pool.submit([] {}));
    for (auto& f : fs) f.get();
    pool.wait_idle();
  }
  EXPECT_EQ(wait.count() - wait_before, 32u);
  EXPECT_EQ(run.count() - run_before, 32u);
}
