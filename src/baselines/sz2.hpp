// SZ2-like baseline: Lorenzo prediction + linear-scaling quantization +
// Huffman + LZ (Liang et al., Big Data 2018; paper Section VI).
//
// Feature profile reproduced from Table III: ABS (guaranteed), REL
// (supported but NOT guaranteed — SZ2 implements point-wise relative bounds
// via a log-space transform whose exp/log round-trip rounding can exceed the
// bound; our re-implementation keeps that flaw on purpose), NOA (guaranteed),
// float+double, CPU only, serial only.
#pragma once

#include "common/compressor.hpp"

namespace repro::baselines {

class Sz2Compressor final : public Compressor {
 public:
  std::string name() const override { return "SZ2_Serial"; }
  Features features() const override {
    Features f;
    f.abs = f.rel = f.noa = true;
    f.f32 = f.f64 = true;
    f.cpu = true;
    f.guarantee_abs = f.guarantee_noa = true;
    f.guarantee_rel = false;  // log-transform rounding (Table III '○')
    return f;
  }
  Bytes compress(const Field& in, double eps, EbType eb) const override;
  std::vector<u8> decompress(const Bytes& stream) const override;
};

}  // namespace repro::baselines
