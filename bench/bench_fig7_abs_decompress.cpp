// Figure 7 reproduction: ABS error bounds — compression ratio vs.
// DECOMPRESSION throughput (same sweep as Figure 6; the decomp_MBps column
// is the plotted series). Fig 7a = f32, 7b = f64, 7c = second host.
#include "harness.hpp"

using namespace repro;

int main(int argc, char** argv) {
  bench::SweepConfig cfg = bench::parse_args(argc, argv, {});
  cfg.eb = EbType::ABS;
  cfg.exclude_non_3d = true;
  // The paper compares to SZ2 only in the REL section (V-C); SZ3 elsewhere.
  cfg.exclude_compressors = {"SZ2_Serial"};

  cfg.dtype = DType::F32;
  bench::print_rows("Fig7a_ABS_decompress_f32", bench::run_sweep(cfg));

  cfg.dtype = DType::F64;
  cfg.exclude_compressors = {"SZ2_Serial", "SPERR_Serial"};
  bench::print_rows("Fig7b_ABS_decompress_f64", bench::run_sweep(cfg));
  return bench::finish();
}
