#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "data/rng.hpp"

namespace repro::data {
namespace {

// ---------------------------------------------------------------------------
// Field-construction primitives
// ---------------------------------------------------------------------------

struct Dims {
  std::size_t z, y, x;
  std::size_t count() const { return z * y * x; }
};

/// Add one octave of trilinearly interpolated value noise on a (gz,gy,gx)
/// lattice. Repeated with doubling grids this yields smooth multi-scale
/// fields like the climate/weather SDRBench inputs.
void add_value_noise(std::vector<double>& v, Dims d, std::size_t gz, std::size_t gy,
                     std::size_t gx, double amplitude, Rng& rng) {
  gz = std::max<std::size_t>(gz, 1);
  gy = std::max<std::size_t>(gy, 1);
  gx = std::max<std::size_t>(gx, 1);
  std::vector<double> lattice((gz + 1) * (gy + 1) * (gx + 1));
  for (double& l : lattice) l = rng.uniform(-1.0, 1.0);
  auto lat = [&](std::size_t k, std::size_t j, std::size_t i) {
    return lattice[(k * (gy + 1) + j) * (gx + 1) + i];
  };
  for (std::size_t k = 0; k < d.z; ++k) {
    double fz = d.z > 1 ? static_cast<double>(k) / static_cast<double>(d.z - 1) : 0.0;
    double zf = fz * static_cast<double>(gz);
    std::size_t z0 = std::min(static_cast<std::size_t>(zf), gz - (gz > 0 ? 1 : 0));
    double tz = zf - static_cast<double>(z0);
    for (std::size_t j = 0; j < d.y; ++j) {
      double fy = d.y > 1 ? static_cast<double>(j) / static_cast<double>(d.y - 1) : 0.0;
      double yf = fy * static_cast<double>(gy);
      std::size_t y0 = std::min(static_cast<std::size_t>(yf), gy - (gy > 0 ? 1 : 0));
      double ty = yf - static_cast<double>(y0);
      for (std::size_t i = 0; i < d.x; ++i) {
        double fx = d.x > 1 ? static_cast<double>(i) / static_cast<double>(d.x - 1) : 0.0;
        double xf = fx * static_cast<double>(gx);
        std::size_t x0 = std::min(static_cast<std::size_t>(xf), gx - (gx > 0 ? 1 : 0));
        double tx = xf - static_cast<double>(x0);
        double c00 = lat(z0, y0, x0) + tx * (lat(z0, y0, x0 + 1) - lat(z0, y0, x0));
        double c01 = lat(z0, y0 + 1, x0) + tx * (lat(z0, y0 + 1, x0 + 1) - lat(z0, y0 + 1, x0));
        double c10 = lat(z0 + 1, y0, x0) + tx * (lat(z0 + 1, y0, x0 + 1) - lat(z0 + 1, y0, x0));
        double c11 =
            lat(z0 + 1, y0 + 1, x0) + tx * (lat(z0 + 1, y0 + 1, x0 + 1) - lat(z0 + 1, y0 + 1, x0));
        double c0 = c00 + ty * (c01 - c00);
        double c1 = c10 + ty * (c11 - c10);
        v[(k * d.y + j) * d.x + i] += amplitude * (c0 + tz * (c1 - c0));
      }
    }
  }
}

/// Smooth multi-octave field: octave o uses grid base*2^o and amplitude
/// roughness^o. roughness ~0.3 = very smooth (climate), ~0.8 = turbulent.
std::vector<double> smooth_field(Dims d, int octaves, double roughness, double scale,
                                 Rng& rng) {
  std::vector<double> v(d.count(), 0.0);
  double amp = scale;
  std::size_t gz = d.z > 1 ? 2 : 1, gy = d.y > 1 ? 2 : 1, gx = d.x > 1 ? 2 : 1;
  // The finest octave is capped at 1/8 of the grid: SDRBench fields are
  // discretizations of continuous physics and stay smooth at the cell scale,
  // which is exactly the property the compressors under test exploit.
  for (int o = 0; o < octaves; ++o) {
    add_value_noise(v, d, gz, gy, gx, amp, rng);
    amp *= roughness;
    gz = std::min<std::size_t>(gz * 2, std::max<std::size_t>(d.z / 8, 1));
    gy = std::min<std::size_t>(gy * 2, std::max<std::size_t>(d.y / 8, 1));
    gx = std::min<std::size_t>(gx * 2, std::max<std::size_t>(d.x / 8, 1));
  }
  return v;
}

/// Scale paper dims down to ~target values, preserving the aspect ratio.
Dims scale_dims(std::array<std::size_t, 3> paper, std::size_t target) {
  double prod = static_cast<double>(paper[0]) * static_cast<double>(paper[1]) *
                static_cast<double>(paper[2]);
  double f = std::cbrt(static_cast<double>(target) / prod);
  // Don't scale degenerate (==1) axes.
  int live = 0;
  for (std::size_t p : paper) live += p > 1;
  if (live == 1) f = static_cast<double>(target) / prod;
  if (live == 2) f = std::sqrt(static_cast<double>(target) / prod);
  auto s = [&](std::size_t p) {
    if (p <= 1) return p;
    return std::max<std::size_t>(4, static_cast<std::size_t>(std::lround(p * f)));
  };
  return {s(paper[0]), s(paper[1]), s(paper[2])};
}

SyntheticFile make_file(const std::string& name, DType t, Dims d, std::vector<double> vals) {
  SyntheticFile f;
  f.name = name;
  f.dtype = t;
  f.dims = {d.z, d.y, d.x};
  if (t == DType::F32) {
    f.f32.resize(vals.size());
    for (std::size_t i = 0; i < vals.size(); ++i) f.f32[i] = static_cast<float>(vals[i]);
  } else {
    f.f64 = std::move(vals);
  }
  return f;
}

// ---------------------------------------------------------------------------
// Per-suite generators; each mimics the structure of its SDRBench namesake.
// ---------------------------------------------------------------------------

using Gen = SyntheticFile (*)(int idx, std::size_t target, u64 seed);

SyntheticFile gen_cesm(int idx, std::size_t target, u64 seed) {
  // Climate variables on a level x lat x lon grid; different variables have
  // wildly different magnitudes (CLDHGH ~1e-1, PS ~1e5 ...), exercising NOA.
  Dims d = scale_dims({26, 1800, 3600}, target);
  Rng rng(seed);
  // Real CESM variables span ~9 decades (CLDHGH ~1e-1 ... PS ~1e5). The
  // large-magnitude fields are what drives the paper's unquantizable-value
  // statistics: at ABS 1e-3 their bin numbers overflow the denormal range
  // and are stored losslessly (Section III-B, up to 11.2% on one input).
  static constexpr double kMags[] = {1.0, 1e4, 1e-3, 10.0, 1e3, 0.1, 100.0};
  double mag = kMags[idx % 7];
  auto v = smooth_field(d, 5, 0.3, mag, rng);
  return make_file("cesm_var" + std::to_string(idx), DType::F32, d, std::move(v));
}

SyntheticFile gen_exaalt(int idx, std::size_t target, u64 seed) {
  // Molecular dynamics: per-atom coordinates of a thermally perturbed copper
  // lattice, stored as 2D (component x atom) arrays -> piecewise smooth with
  // jumps between lattice rows.
  Dims d{1, 3, std::max<std::size_t>(target / 3, 16)};
  Rng rng(seed);
  std::vector<double> v(d.count());
  std::size_t atoms = d.x;
  std::size_t row = std::max<std::size_t>(static_cast<std::size_t>(std::cbrt(atoms)), 2);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t a = 0; a < atoms; ++a) {
      std::size_t cell = c == 0 ? a % row : (c == 1 ? (a / row) % row : a / (row * row));
      v[c * atoms + a] = 3.615 * static_cast<double>(cell) + 0.08 * rng.gaussian();
    }
  }
  return make_file("copper_md" + std::to_string(idx), DType::F32, d, std::move(v));
}

SyntheticFile gen_hurricane(int idx, std::size_t target, u64 seed) {
  // Weather simulation: smooth large-scale flow + turbulent small scales.
  Dims d = scale_dims({100, 500, 500}, target);
  Rng rng(seed);
  auto v = smooth_field(d, 6, 0.45, 50.0 + 10.0 * idx, rng);
  return make_file("isabel_f" + std::to_string(idx), DType::F32, d, std::move(v));
}

SyntheticFile gen_hacc(int idx, std::size_t target, u64 seed) {
  // Cosmology particles: 1D arrays. Even files = positions (clustered,
  // locally correlated after the simulation's space-filling ordering), odd
  // files = velocities (near-Gaussian, hard to compress) — matching the
  // x/y/z/vx/vy/vz structure of the HACC set.
  Dims d{1, 1, target};
  Rng rng(seed);
  std::vector<double> v(d.count());
  if (idx % 2 == 0) {
    double pos = rng.uniform(0.0, 256.0);
    for (std::size_t i = 0; i < d.x; ++i) {
      pos += 0.02 * rng.gaussian();  // local clustering: a slow walk
      if (rng.uniform() < 0.001) pos = rng.uniform(0.0, 256.0);  // next cluster
      v[i] = pos;
    }
  } else {
    for (std::size_t i = 0; i < d.x; ++i) v[i] = 300.0 * rng.gaussian();
  }
  return make_file(std::string(idx % 2 ? "hacc_v" : "hacc_x") + std::to_string(idx / 2),
                   DType::F32, d, std::move(v));
}

SyntheticFile gen_nyx(int idx, std::size_t target, u64 seed) {
  // Cosmology fields on a regular grid; baryon_density-like files span many
  // decades (exp of a smooth field), others are temperature/velocity-like.
  Dims d = scale_dims({512, 512, 512}, target);
  Rng rng(seed);
  auto base = smooth_field(d, 5, 0.4, 1.0, rng);
  std::vector<double> v(base.size());
  if (idx % 2 == 0) {
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = std::exp(3.0 * base[i]);
  } else {
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = 1e4 * base[i];
  }
  return make_file("nyx_f" + std::to_string(idx), DType::F32, d, std::move(v));
}

SyntheticFile gen_scale(int idx, std::size_t target, u64 seed) {
  Dims d = scale_dims({98, 1200, 1200}, target);
  Rng rng(seed);
  auto v = smooth_field(d, 5, 0.32, 20.0 + 5.0 * idx, rng);
  return make_file("scale_f" + std::to_string(idx), DType::F32, d, std::move(v));
}

SyntheticFile gen_qmcpack(int idx, std::size_t target, u64 seed) {
  // Quantum Monte Carlo orbitals: oscillatory (plane-wave-like) signals under
  // a smooth envelope, stacked along the first axis.
  Dims d = scale_dims({33120, 69, 69}, target);
  Rng rng(seed);
  std::vector<double> v(d.count());
  for (std::size_t k = 0; k < d.z; ++k) {
    double kx = 1.0 + rng.uniform() * 6.0, ky = 1.0 + rng.uniform() * 6.0;
    double phase = rng.uniform(0.0, 6.28);
    for (std::size_t j = 0; j < d.y; ++j)
      for (std::size_t i = 0; i < d.x; ++i) {
        double fy = static_cast<double>(j) / static_cast<double>(d.y);
        double fx = static_cast<double>(i) / static_cast<double>(d.x);
        double env = std::exp(-4.0 * ((fx - 0.5) * (fx - 0.5) + (fy - 0.5) * (fy - 0.5)));
        v[(k * d.y + j) * d.x + i] =
            env * std::sin(6.28 * (kx * fx + ky * fy) + phase) * 0.1;
      }
  }
  return make_file("qmc_spo" + std::to_string(idx), DType::F32, d, std::move(v));
}

SyntheticFile gen_nwchem(int idx, std::size_t target, u64 seed) {
  // Quantum-chemistry two-electron integrals: magnitudes spanning many
  // decades with sign changes, only weakly ordered.
  Dims d{1, 1, target};
  Rng rng(seed + static_cast<u64>(idx));
  std::vector<double> v(d.count());
  double mag = -2.0;
  for (std::size_t i = 0; i < d.x; ++i) {
    mag += 0.01 * rng.gaussian();
    mag = std::clamp(mag, -12.0, 2.0);
    double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
    v[i] = sign * std::pow(10.0, mag) * (0.5 + rng.uniform());
  }
  return make_file("nwchem_tce" + std::to_string(idx), DType::F64, d, std::move(v));
}

SyntheticFile gen_miranda(int idx, std::size_t target, u64 seed) {
  // Radiation hydrodynamics: smooth regions separated by sharp material
  // interfaces (tanh fronts riding on a smooth background).
  Dims d = scale_dims({256, 384, 384}, target);
  Rng rng(seed);
  auto v = smooth_field(d, 5, 0.45, 1.0, rng);
  double fz = 0.3 + 0.4 * rng.uniform();
  for (std::size_t k = 0; k < d.z; ++k) {
    double t = std::tanh((static_cast<double>(k) / static_cast<double>(d.z) - fz) * 40.0);
    for (std::size_t j = 0; j < d.y; ++j)
      for (std::size_t i = 0; i < d.x; ++i) v[(k * d.y + j) * d.x + i] += 2.0 * t;
  }
  for (double& x : v) x = 1.5 + x * (0.2 + 0.05 * idx);
  return make_file("miranda_f" + std::to_string(idx), DType::F64, d, std::move(v));
}

SyntheticFile gen_brown(int idx, std::size_t target, u64 seed) {
  // "Brown Samples": literally synthetic Brownian motion (the SDRBench set is
  // generated noise with a Brownian spectrum).
  Dims d{1, 1, target};
  Rng rng(seed + static_cast<u64>(idx) * 7919);
  std::vector<double> v(d.count());
  double acc = 0.0;
  for (std::size_t i = 0; i < d.x; ++i) {
    acc += rng.gaussian();
    v[i] = acc;
  }
  return make_file("brown" + std::to_string(idx), DType::F64, d, std::move(v));
}

struct KindEntry {
  const char* kind;
  Gen gen;
};

constexpr KindEntry kKinds[] = {
    {"cesm", gen_cesm},       {"exaalt", gen_exaalt}, {"hurricane", gen_hurricane},
    {"hacc", gen_hacc},       {"nyx", gen_nyx},       {"scale", gen_scale},
    {"qmcpack", gen_qmcpack}, {"nwchem", gen_nwchem}, {"miranda", gen_miranda},
    {"brown", gen_brown},
};

Gen find_gen(const std::string& kind) {
  for (const auto& e : kKinds)
    if (kind == e.kind) return e.gen;
  throw CompressionError("unknown suite kind: " + kind);
}

}  // namespace

std::vector<SuiteSpec> paper_suites() {
  return {
      {"CESM-ATM", "Climate", DType::F32, 33, "26 x 1800 x 3600", "cesm"},
      {"EXAALT Copper", "Molecular Dyn.", DType::F32, 6, "Various 2D", "exaalt"},
      {"Hurricane Isabel", "Weather Sim.", DType::F32, 13, "100 x 500 x 500", "hurricane"},
      {"HACC", "Cosmology", DType::F32, 6, "280,953,867", "hacc"},
      {"NYX", "Cosmology", DType::F32, 6, "512 x 512 x 512", "nyx"},
      {"SCALE", "Climate", DType::F32, 12, "98 x 1200 x 1200", "scale"},
      {"QMCPACK", "Quantum MC", DType::F32, 2, "33,120 x 69 x 69", "qmcpack"},
      {"NWChem", "Molecular Dyn.", DType::F64, 1, "102,953,248", "nwchem"},
      {"Miranda", "Hydrodynamics", DType::F64, 7, "256 x 384 x 384", "miranda"},
      {"Brown Samples", "Synthetic", DType::F64, 3, "33,554,433", "brown"},
  };
}

Suite generate(const SuiteSpec& spec, std::size_t target_values, int max_files, u64 seed) {
  Suite s;
  s.spec = spec;
  Gen gen = find_gen(spec.kind);
  int files = max_files > 0 ? std::min(max_files, spec.paper_files) : spec.paper_files;
  for (int i = 0; i < files; ++i)
    s.files.push_back(gen(i, target_values, seed ^ (static_cast<u64>(i) * 0x9E3779B9ull) ^
                                                std::hash<std::string>{}(spec.name)));
  return s;
}

std::vector<Suite> generate_all(std::size_t target_values, int max_files) {
  std::vector<Suite> suites;
  for (const auto& spec : paper_suites()) suites.push_back(generate(spec, target_values, max_files));
  return suites;
}

}  // namespace repro::data
