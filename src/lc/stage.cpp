#include "lc/stage.hpp"

#include <cstring>

#include "bits/bitshuffle.hpp"
#include "bits/delta.hpp"
#include "bits/negabinary.hpp"
#include "bits/zerobyte.hpp"
#include "lossless/lz.hpp"

namespace repro::lc {
namespace {

// Helpers to view a byte chunk as words (trailing partial word passes
// through untouched, as in LC).
template <typename U, typename Fn>
void over_words(std::vector<u8>& data, Fn&& fn) {
  std::size_t n = data.size() / sizeof(U);
  if (n == 0) return;
  std::vector<U> w(n);
  std::memcpy(w.data(), data.data(), n * sizeof(U));
  fn(w.data(), n);
  std::memcpy(data.data(), w.data(), n * sizeof(U));
}

template <typename U>
class DiffStage final : public Stage {
 public:
  std::string name() const override {
    return sizeof(U) == 4 ? "diff32" : "diff64";
  }
  void encode(std::vector<u8>& d) const override {
    over_words<U>(d, [](U* w, std::size_t n) {
      U prev = 0;
      for (std::size_t i = 0; i < n; ++i) {
        U cur = w[i];
        w[i] = static_cast<U>(cur - prev);
        prev = cur;
      }
    });
  }
  void decode(std::vector<u8>& d, std::size_t) const override {
    over_words<U>(d, [](U* w, std::size_t n) {
      U acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        acc = static_cast<U>(acc + w[i]);
        w[i] = acc;
      }
    });
  }
};

template <typename U>
class DiffNbStage final : public Stage {
 public:
  std::string name() const override {
    return sizeof(U) == 4 ? "diff_nb32" : "diff_nb64";
  }
  void encode(std::vector<u8>& d) const override {
    over_words<U>(d, [](U* w, std::size_t n) { bits::delta_negabinary_encode(w, n); });
  }
  void decode(std::vector<u8>& d, std::size_t) const override {
    over_words<U>(d, [](U* w, std::size_t n) { bits::delta_negabinary_decode(w, n); });
  }
};

template <typename U>
class XorPrevStage final : public Stage {
 public:
  std::string name() const override { return sizeof(U) == 4 ? "xor32" : "xor64"; }
  void encode(std::vector<u8>& d) const override {
    over_words<U>(d, [](U* w, std::size_t n) {
      U prev = 0;
      for (std::size_t i = 0; i < n; ++i) {
        U cur = w[i];
        w[i] = cur ^ prev;
        prev = cur;
      }
    });
  }
  void decode(std::vector<u8>& d, std::size_t) const override {
    over_words<U>(d, [](U* w, std::size_t n) {
      U acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        acc ^= w[i];
        w[i] = acc;
      }
    });
  }
};

template <typename U>
class NegabinaryStage final : public Stage {
 public:
  std::string name() const override { return sizeof(U) == 4 ? "nb32" : "nb64"; }
  void encode(std::vector<u8>& d) const override {
    over_words<U>(d, [](U* w, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) w[i] = bits::to_negabinary(w[i]);
    });
  }
  void decode(std::vector<u8>& d, std::size_t) const override {
    over_words<U>(d, [](U* w, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) w[i] = bits::from_negabinary(w[i]);
    });
  }
};

template <typename U>
class BitShuffleStage final : public Stage {
 public:
  std::string name() const override { return sizeof(U) == 4 ? "bshfl32" : "bshfl64"; }
  void encode(std::vector<u8>& d) const override { apply(d); }
  void decode(std::vector<u8>& d, std::size_t) const override { apply(d); }

 private:
  static void apply(std::vector<u8>& d) {
    constexpr std::size_t tile = sizeof(U) * 8;
    over_words<U>(d, [](U* w, std::size_t n) {
      std::size_t full = n / tile * tile;  // trailing partial tile untouched
      bits::bitshuffle(w, full);
    });
  }
};

/// Byte-granularity transpose: byte k of every word grouped together (the
/// classic HDF5-style "shuffle" filter).
template <typename U>
class ByteShuffleStage final : public Stage {
 public:
  std::string name() const override { return sizeof(U) == 4 ? "byshfl32" : "byshfl64"; }
  void encode(std::vector<u8>& d) const override {
    constexpr std::size_t w = sizeof(U);
    std::size_t n = d.size() / w;
    std::vector<u8> out(d.size());
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t b = 0; b < w; ++b) out[b * n + i] = d[i * w + b];
    std::copy(out.begin(), out.begin() + n * w, d.begin());
  }
  void decode(std::vector<u8>& d, std::size_t) const override {
    constexpr std::size_t w = sizeof(U);
    std::size_t n = d.size() / w;
    std::vector<u8> out(d.size());
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t b = 0; b < w; ++b) out[i * w + b] = d[b * n + i];
    std::copy(out.begin(), out.begin() + n * w, d.begin());
  }
};

class ZeroByteStage final : public Stage {
 public:
  std::string name() const override { return "zbe"; }
  bool size_preserving() const override { return false; }
  void encode(std::vector<u8>& d) const override {
    std::vector<u8> out;
    bits::zerobyte_encode(d.data(), d.size(), out);
    d = std::move(out);
  }
  void decode(std::vector<u8>& d, std::size_t original_size) const override {
    std::vector<u8> out(original_size);
    bits::zerobyte_decode(d.data(), d.size(), out.data(), original_size);
    d = std::move(out);
  }
};

/// Byte RLE: (count, byte) pairs with 255-continuation for long runs.
class RleStage final : public Stage {
 public:
  std::string name() const override { return "rle"; }
  bool size_preserving() const override { return false; }
  void encode(std::vector<u8>& d) const override {
    std::vector<u8> out;
    out.reserve(d.size());
    std::size_t i = 0;
    while (i < d.size()) {
      u8 b = d[i];
      std::size_t run = 1;
      while (i + run < d.size() && d[i + run] == b) ++run;
      std::size_t r = run;
      while (r > 255) {
        out.push_back(255);
        out.push_back(b);
        r -= 255;
      }
      out.push_back(static_cast<u8>(r));
      out.push_back(b);
      i += run;
    }
    d = std::move(out);
  }
  void decode(std::vector<u8>& d, std::size_t original_size) const override {
    std::vector<u8> out;
    out.reserve(original_size);
    for (std::size_t i = 0; i + 1 < d.size(); i += 2)
      out.insert(out.end(), d[i], d[i + 1]);
    if (out.size() != original_size) throw CompressionError("rle: size mismatch");
    d = std::move(out);
  }
};

class LzStage final : public Stage {
 public:
  std::string name() const override { return "lz"; }
  bool size_preserving() const override { return false; }
  void encode(std::vector<u8>& d) const override { d = lossless::lz_encode(d); }
  void decode(std::vector<u8>& d, std::size_t original_size) const override {
    d = lossless::lz_decode(d.data(), d.size());
    if (d.size() != original_size) throw CompressionError("lz stage: size mismatch");
  }
};

}  // namespace

std::string Pipeline::name() const {
  if (stages_.empty()) return "identity";
  std::string s;
  for (const auto& st : stages_) {
    if (!s.empty()) s += "+";
    s += st->name();
  }
  return s;
}

std::vector<u8> Pipeline::encode(std::vector<u8> data) const {
  // Record the input size of every size-changing stage, exactly like LC's
  // per-chunk length metadata, so decode can invert them in reverse order.
  std::vector<u32> sizes;
  for (const auto& st : stages_) {
    if (!st->size_preserving()) sizes.push_back(static_cast<u32>(data.size()));
    st->encode(data);
  }
  std::vector<u8> out;
  out.reserve(4 + sizes.size() * 4 + data.size());
  u32 cnt = static_cast<u32>(sizes.size());
  const u8* p = reinterpret_cast<const u8*>(&cnt);
  out.insert(out.end(), p, p + 4);
  p = reinterpret_cast<const u8*>(sizes.data());
  out.insert(out.end(), p, p + sizes.size() * 4);
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::vector<u8> Pipeline::decode(std::vector<u8> data, std::size_t original_size) const {
  if (data.size() < 4) throw CompressionError("lc pipeline: truncated header");
  u32 cnt;
  std::memcpy(&cnt, data.data(), 4);
  if (data.size() < 4 + std::size_t{cnt} * 4)
    throw CompressionError("lc pipeline: truncated size table");
  std::vector<u32> sizes(cnt);
  std::memcpy(sizes.data(), data.data() + 4, cnt * 4);
  data.erase(data.begin(), data.begin() + 4 + cnt * 4);
  std::size_t next_size = cnt;  // consume sizes from the back
  for (std::size_t i = stages_.size(); i-- > 0;) {
    const Stage& st = *stages_[i];
    if (st.size_preserving()) {
      st.decode(data, data.size());
    } else {
      if (next_size == 0) throw CompressionError("lc pipeline: size table underrun");
      st.decode(data, sizes[--next_size]);
    }
  }
  if (data.size() != original_size) throw CompressionError("lc pipeline: size mismatch");
  return data;
}

StagePtr make_diff(int wb) {
  return wb == 32 ? StagePtr(std::make_shared<DiffStage<u32>>())
                  : StagePtr(std::make_shared<DiffStage<u64>>());
}
StagePtr make_diff_negabinary(int wb) {
  return wb == 32 ? StagePtr(std::make_shared<DiffNbStage<u32>>())
                  : StagePtr(std::make_shared<DiffNbStage<u64>>());
}
StagePtr make_xor_prev(int wb) {
  return wb == 32 ? StagePtr(std::make_shared<XorPrevStage<u32>>())
                  : StagePtr(std::make_shared<XorPrevStage<u64>>());
}
StagePtr make_negabinary(int wb) {
  return wb == 32 ? StagePtr(std::make_shared<NegabinaryStage<u32>>())
                  : StagePtr(std::make_shared<NegabinaryStage<u64>>());
}
StagePtr make_bitshuffle(int wb) {
  return wb == 32 ? StagePtr(std::make_shared<BitShuffleStage<u32>>())
                  : StagePtr(std::make_shared<BitShuffleStage<u64>>());
}
StagePtr make_byteshuffle(int wb) {
  return wb == 32 ? StagePtr(std::make_shared<ByteShuffleStage<u32>>())
                  : StagePtr(std::make_shared<ByteShuffleStage<u64>>());
}
StagePtr make_zerobyte() { return std::make_shared<ZeroByteStage>(); }
StagePtr make_rle() { return std::make_shared<RleStage>(); }
StagePtr make_lz() { return std::make_shared<LzStage>(); }

std::vector<StagePtr> component_library(int wb) {
  return {make_diff(wb),       make_diff_negabinary(wb), make_xor_prev(wb),
          make_negabinary(wb), make_bitshuffle(wb),      make_byteshuffle(wb),
          make_zerobyte(),     make_rle(),               make_lz()};
}

}  // namespace repro::lc
