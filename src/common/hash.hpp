// 128-bit content hash — the identity of a chunk in the PFPS tiered store.
//
// The store (src/store) keys every cached/persisted result by a 128-bit hash
// over (payload bytes, dtype, error-bound mode, bound), so two requests with
// the same bytes but different bounds never collide on one entry, while the
// same request always dedups onto one. 128 bits keep the birthday collision
// probability negligible at any realistic entry count (~2^-64 per pair).
//
// The mixer is the MurmurHash3 x64/128 finalization scheme with explicit
// little-endian loads, so a hash computed on any host names the same chunk —
// the store's on-disk segment frames carry these keys verbatim.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace repro::common {

struct Hash128 {
  u64 hi = 0;
  u64 lo = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
  friend auto operator<=>(const Hash128&, const Hash128&) = default;

  bool is_zero() const { return hi == 0 && lo == 0; }

  /// 32 lowercase hex characters, high word first (the spelling the CLI
  /// prints and `pfpl store get` parses).
  std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string s(32, '0');
    for (int i = 0; i < 16; ++i) s[i] = digits[(hi >> (60 - 4 * i)) & 0xF];
    for (int i = 0; i < 16; ++i) s[16 + i] = digits[(lo >> (60 - 4 * i)) & 0xF];
    return s;
  }

  /// Parse the hex() spelling (exactly 32 hex chars, case-insensitive).
  static bool parse(const std::string& s, Hash128& out) {
    if (s.size() != 32) return false;
    u64 w[2] = {0, 0};
    for (int i = 0; i < 32; ++i) {
      const char c = s[static_cast<std::size_t>(i)];
      u64 v;
      if (c >= '0' && c <= '9') v = static_cast<u64>(c - '0');
      else if (c >= 'a' && c <= 'f') v = static_cast<u64>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v = static_cast<u64>(c - 'A' + 10);
      else return false;
      w[i / 16] = (w[i / 16] << 4) | v;
    }
    out.hi = w[0];
    out.lo = w[1];
    return true;
  }
};

/// std::unordered_map hasher: the key is already uniformly mixed, so folding
/// the words is enough.
struct Hash128Hasher {
  std::size_t operator()(const Hash128& h) const noexcept {
    return static_cast<std::size_t>(h.hi ^ (h.lo * 0x9E3779B97F4A7C15ull));
  }
};

namespace detail {

inline u64 rotl64(u64 x, int r) { return (x << r) | (x >> (64 - r)); }

inline u64 fmix64(u64 k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

/// Little-endian 64-bit load, byte-portable (compiles to a plain load on LE
/// hosts — the same pattern the PFPN wire codec uses).
inline u64 load_le64(const u8* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
  return v;
}

}  // namespace detail

/// One-shot 128-bit hash (MurmurHash3 x64/128 with little-endian loads).
inline Hash128 hash128(const void* data, std::size_t n, u64 seed = 0) {
  using detail::fmix64;
  using detail::load_le64;
  using detail::rotl64;
  const u8* p = static_cast<const u8*>(data);
  const std::size_t nblocks = n / 16;
  u64 h1 = seed, h2 = seed;
  constexpr u64 c1 = 0x87C37B91114253D5ull;
  constexpr u64 c2 = 0x4CF5AD432745937Full;

  for (std::size_t b = 0; b < nblocks; ++b) {
    u64 k1 = load_le64(p + b * 16);
    u64 k2 = load_le64(p + b * 16 + 8);
    k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
    h1 = rotl64(h1, 27); h1 += h2; h1 = h1 * 5 + 0x52DCE729u;
    k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2;
    h2 = rotl64(h2, 31); h2 += h1; h2 = h2 * 5 + 0x38495AB5u;
  }

  const u8* tail = p + nblocks * 16;
  u64 k1 = 0, k2 = 0;
  switch (n & 15) {
    case 15: k2 ^= static_cast<u64>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<u64>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<u64>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<u64>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<u64>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<u64>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<u64>(tail[8]);
      k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<u64>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<u64>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<u64>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<u64>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<u64>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<u64>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<u64>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<u64>(tail[0]);
      k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
      break;
    case 0: break;
  }

  h1 ^= static_cast<u64>(n);
  h2 ^= static_cast<u64>(n);
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

}  // namespace repro::common
