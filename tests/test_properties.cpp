// Property-based tests: algebraic invariants of the PFPL machinery that must
// hold for *all* inputs, exercised with broad parameterized sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pfpl.hpp"
#include "core/quantizers.hpp"
#include "data/rng.hpp"
#include "fpmath/det_math.hpp"
#include "metrics/error_stats.hpp"

using namespace repro;
using pfpl::AbsQuantizer;
using pfpl::Executor;
using pfpl::Params;
using pfpl::RelQuantizer;

namespace {

std::vector<float> signal(std::size_t n, double step, u64 seed) {
  data::Rng rng(seed);
  std::vector<float> v(n);
  double acc = 0;
  for (auto& x : v) {
    acc += step * rng.gaussian();
    x = static_cast<float>(acc);
  }
  return v;
}

}  // namespace

// --- determinism ---------------------------------------------------------------

TEST(Properties, CompressionIsDeterministic) {
  auto v = signal(30000, 0.01, 1);
  for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA}) {
    Bytes a = pfpl::compress(Field(v.data(), v.size()), {1e-3, eb});
    Bytes b = pfpl::compress(Field(v.data(), v.size()), {1e-3, eb});
    EXPECT_EQ(a, b) << to_string(eb);
  }
}

TEST(Properties, DecompressionIsIdempotent) {
  auto v = signal(30000, 0.01, 2);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  EXPECT_EQ(pfpl::decompress(c), pfpl::decompress(c));
}

TEST(Properties, RecompressionOfDecompressedIsLossless) {
  // Compressing already-quantized data at the same bound must reproduce it
  // exactly (fixed point): every value sits at a bin centre (or was stored
  // losslessly), so re-quantization is exact.
  auto v = signal(30000, 0.01, 3);
  for (EbType eb : {EbType::ABS, EbType::REL}) {
    Bytes c1 = pfpl::compress(Field(v.data(), v.size()), {1e-3, eb});
    auto once = pfpl::decompress_as<float>(c1);
    Bytes c2 = pfpl::compress(Field(once.data(), once.size()), {1e-3, eb});
    auto twice = pfpl::decompress_as<float>(c2);
    EXPECT_EQ(once, twice) << to_string(eb);
  }
}

// --- quantizer algebra ----------------------------------------------------------

TEST(Properties, AbsBinsMonotoneInValue) {
  AbsQuantizer<float> q(1e-2);
  data::Rng rng(4);
  float prev_v = -1e6f;
  i64 prev_bin = std::numeric_limits<i64>::min();
  std::vector<float> vals;
  for (int i = 0; i < 10000; ++i) vals.push_back(static_cast<float>(rng.uniform(-1e4, 1e4)));
  std::sort(vals.begin(), vals.end());
  for (float v : vals) {
    u32 w = q.encode(v);
    if (!AbsQuantizer<float>::is_bin(w)) continue;
    i64 mag = static_cast<i64>(w >> 1);
    i64 bin = (w & 1) ? -mag : mag;
    EXPECT_GE(bin, prev_bin) << "v=" << v << " prev=" << prev_v;
    prev_bin = bin;
    prev_v = v;
  }
}

TEST(Properties, RelMagnitudeMonotone) {
  RelQuantizer<float> q(1e-2);
  float prev = 0;
  for (float v = 1e-20f; v < 1e20f; v *= 1.37f) {
    u32 w = q.encode(v);
    float r = q.decode(w);
    EXPECT_GE(r, prev) << v;  // reconstruction magnitudes non-decreasing
    prev = r;
  }
}

TEST(Properties, QuantizerSymmetricUnderNegation) {
  // ABS: decode(encode(-v)) == -decode(encode(v)) for all binned values.
  AbsQuantizer<float> q(1e-3);
  data::Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    float v = static_cast<float>(rng.gaussian());
    float rp = q.decode(q.encode(v));
    float rn = q.decode(q.encode(-v));
    EXPECT_EQ(rp, -rn) << v;  // numeric equality (+0 == -0 by design)
  }
}

TEST(Properties, CoarserBoundNeverCompressesWorse) {
  // On smooth data the compressed size must be monotone in the bound.
  auto v = signal(1 << 18, 0.01, 6);
  std::size_t prev = 0;
  for (double eps : {1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
    Bytes c = pfpl::compress(Field(v.data(), v.size()), {eps, EbType::ABS});
    if (prev) EXPECT_LE(c.size(), prev) << eps;
    prev = c.size();
  }
}

TEST(Properties, StreamSizeBoundedByRawPlusOverhead) {
  // Raw-chunk fallback caps expansion at raw size + table + header, even on
  // adversarial (incompressible) input.
  data::Rng rng(7);
  for (EbType eb : {EbType::ABS, EbType::REL}) {
    std::vector<float> v(1 << 16);
    for (auto& x : v) {
      float f = fpmath::from_bits<float>(static_cast<u32>(rng.next_u64()));
      x = std::isfinite(f) ? f : 0.0f;
    }
    Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-12, eb});
    std::size_t raw = v.size() * 4;
    std::size_t overhead = sizeof(pfpl::Header) + ((raw + 16383) / 16384) * 4;
    EXPECT_LE(c.size(), raw + overhead + raw / 100) << to_string(eb);
  }
}

// --- cross-input independence -----------------------------------------------------

TEST(Properties, ChunksAreIndependent) {
  // Changing one value must only change its own chunk's bytes (plus that
  // chunk's size-table entry) — the basis of the parallel design.
  auto v = signal(16384, 0.01, 8);  // 4 chunks
  Bytes a = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  auto v2 = v;
  v2[9000] += 0.5f;  // chunk 2 (values 8192..12287)
  Bytes b = pfpl::compress(Field(v2.data(), v2.size()), {1e-3, EbType::ABS});
  pfpl::Header h = pfpl::peek_header(a);
  ASSERT_EQ(h.chunk_count, 4u);
  std::vector<u32> sa(4), sb(4);
  std::memcpy(sa.data(), a.data() + sizeof(pfpl::Header), 16);
  std::memcpy(sb.data(), b.data() + sizeof(pfpl::Header), 16);
  EXPECT_EQ(sa[0], sb[0]);
  EXPECT_EQ(sa[1], sb[1]);
  EXPECT_EQ(sa[3], sb[3]);
  // Chunks 0 and 1 payload bytes identical.
  std::size_t payload = sizeof(pfpl::Header) + 16;
  std::size_t len01 = (sa[0] & 0x7FFFFFFF) + (sa[1] & 0x7FFFFFFF);
  EXPECT_TRUE(std::equal(a.begin() + payload, a.begin() + payload + len01,
                         b.begin() + payload));
}

// --- parameterized wide sweep -------------------------------------------------------

struct SweepCase {
  double eps;
  EbType eb;
  double step;  // data roughness
};

class WideSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(WideSweep, GuaranteeAndRoundtripAndIdentity) {
  auto [eps, eb, step] = GetParam();
  auto v = signal(20000, step, static_cast<u64>(eps * 1e9) ^ static_cast<u64>(step * 1e6));
  Bytes serial = pfpl::compress(Field(v.data(), v.size()), {eps, eb, Executor::Serial});
  Bytes gpu = pfpl::compress(Field(v.data(), v.size()), {eps, eb, Executor::GpuSim});
  EXPECT_EQ(serial, gpu);
  auto back = pfpl::decompress_as<float>(serial);
  EXPECT_EQ(metrics::count_violations(std::span<const float>(v), std::span<const float>(back),
                                      eps, eb),
            0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WideSweep,
    ::testing::Values(SweepCase{1e-1, EbType::ABS, 0.001}, SweepCase{1e-1, EbType::ABS, 1.0},
                      SweepCase{1e-3, EbType::ABS, 0.001}, SweepCase{1e-3, EbType::ABS, 1.0},
                      SweepCase{1e-5, EbType::ABS, 0.01}, SweepCase{1e-1, EbType::REL, 0.01},
                      SweepCase{1e-3, EbType::REL, 0.001}, SweepCase{1e-3, EbType::REL, 1.0},
                      SweepCase{1e-5, EbType::REL, 0.1}, SweepCase{1e-1, EbType::NOA, 0.01},
                      SweepCase{1e-3, EbType::NOA, 0.1}, SweepCase{1e-4, EbType::NOA, 1.0}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const auto& p = info.param;
      std::string s = to_string(p.eb);
      s += "_eps" + std::to_string(static_cast<int>(-std::log10(p.eps)));
      s += "_step" + std::to_string(static_cast<int>(p.step * 1000));
      return s;
    });
