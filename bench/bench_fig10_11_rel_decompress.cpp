// Figures 10 & 11 reproduction: REL error bounds — compression ratio vs.
// DECOMPRESSION throughput, single (Fig 10) and double (Fig 11) precision.
#include "harness.hpp"

using namespace repro;

int main(int argc, char** argv) {
  bench::SweepConfig cfg = bench::parse_args(argc, argv, {});
  cfg.eb = EbType::REL;

  cfg.dtype = DType::F32;
  bench::print_rows("Fig10_REL_decompress_f32", bench::run_sweep(cfg));

  cfg.dtype = DType::F64;
  bench::print_rows("Fig11_REL_decompress_f64", bench::run_sweep(cfg));
  return bench::finish();
}
