// Chunk-level compression primitives.
//
// PFPL's chunks are fully independent (paper Section III-E): once the header
// is planned — which fixes the quantizer constants, including the NOA range
// reduction — every chunk can be encoded by any thread in any order and the
// assembled stream is byte-identical to the one-shot pfpl::compress(). These
// three functions are that decomposition, factored out of pfpl.cpp so other
// schedulers (the svc batch-compression service, future async backends) can
// drive the same code instead of re-implementing it:
//
//   Header h = plan_header(field, params);          // sequential, cheap
//   for each chunk c (any order, any thread):
//     sizes[c] = encode_chunk(field, h, c, exec, payloads[c]);
//   Bytes out = assemble_stream(h, sizes, payloads, exec);
//
// pfpl::compress() itself is implemented on top of these.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/format.hpp"
#include "core/pfpl.hpp"

namespace repro::pfpl {

/// Scalars covered by one chunk of this dtype (4096 for f32, 2048 for f64).
std::size_t chunk_values(DType dtype);

/// Plan a compression job: validate the bound, resolve recon_param (for NOA
/// this runs the sequential finite-range reduction over the whole field) and
/// fill value_count/chunk_count. Throws CompressionError on invalid bounds.
Header plan_header(const Field& in, const Params& p);

/// Encode chunk `c` (in [0, h.chunk_count)) of `in` under plan `h`: quantize
/// the chunk's slice and run the lossless pipeline, appending the payload to
/// `out`. Returns the chunk-table size word (kRawChunkFlag set when the chunk
/// is stored raw). Thread-safe for distinct `out` buffers.
u32 encode_chunk(const Field& in, const Header& h, std::size_t c, Executor exec,
                 std::vector<u8>& out);

/// Concatenate header, chunk table, and payloads into the final stream —
/// byte-identical to one-shot compress() for the same plan and chunk order.
Bytes assemble_stream(const Header& h, const std::vector<u32>& sizes,
                      const std::vector<Bytes>& payloads, Executor exec);

}  // namespace repro::pfpl
