// Deterministic elementary functions built only from IEEE-754 basic
// operations (+, -, *, /) and integer bit manipulation.
//
// Section III-C of the paper: REL quantization needs log() and exp()-style
// reconstruction, but libm implementations differ between CPUs and GPUs, so
// PFPL ships its own approximations made of fully IEEE-compliant operations.
// Small approximation errors are tolerated because the quantizer verifies
// every value after encoding and falls back to lossless storage when the
// error bound would be violated (Section III-B).
//
// All functions here are pure, branch-deterministic, and never touch the FP
// environment. Compiled with -ffp-contract=off so no FMA is introduced.
#pragma once

#include <cstdint>

#include "fpmath/traits.hpp"

namespace repro::fpmath {

/// Round to the nearest integer, ties to even, without calling libm and
/// without depending on the dynamic rounding mode beyond the IEEE default
/// (round-to-nearest-even), using the classic 2^52 add/subtract trick.
double round_nearest_even(double x);

/// Natural logarithm of a positive finite double.
/// Relative error < 1e-15 over the full range, including denormal inputs.
/// Preconditions: x > 0 and finite (callers filter NaN/inf/zero).
double det_log(double x);

/// log(1 + x) for x in (0, 1e6]; accurate for small x where 1+x loses bits.
double det_log1p(double x);

/// e^x for finite double x. Returns +inf on overflow and correctly scales
/// into the denormal range on underflow (returning 0 below it).
/// Relative error < 4e-16 for results in the normal range.
double det_exp(double x);

}  // namespace repro::fpmath
