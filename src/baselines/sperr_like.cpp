#include "baselines/sperr_like.hpp"

#include <cmath>

#include "baselines/sz_common.hpp"

namespace repro::baselines {
namespace {

constexpr u32 kMagic = 0x52455053u;  // "SPER"
constexpr int kLevels = 3;

// --- CDF 5/3 wavelet lifting on a contiguous array (double precision) ------
//
// forward: predict d_i = x_{2i+1} - (x_{2i} + x_{2i+2})/2,
//          update  s_i = x_{2i} + (d_{i-1} + d_i)/4,
// with symmetric boundary extension; coefficients are deinterleaved into
// [approx | detail] so levels can recurse on the approx half.

void wavelet_fwd(std::vector<double>& x, std::size_t n) {
  if (n < 4) return;
  std::size_t half = (n + 1) / 2;
  std::vector<double> s(half), d(n - half);
  for (std::size_t i = 0; i < n - half; ++i) {
    double left = x[2 * i];
    double right = 2 * i + 2 < n ? x[2 * i + 2] : x[2 * i];
    d[i] = x[2 * i + 1] - 0.5 * (left + right);
  }
  for (std::size_t i = 0; i < half; ++i) {
    double dl = i > 0 ? d[i - 1] : (n - half > 0 ? d[0] : 0.0);
    double dr = i < n - half ? d[i] : (n - half > 0 ? d[n - half - 1] : 0.0);
    s[i] = x[2 * i] + 0.25 * (dl + dr);
  }
  std::copy(s.begin(), s.end(), x.begin());
  std::copy(d.begin(), d.end(), x.begin() + half);
}

void wavelet_inv(std::vector<double>& x, std::size_t n) {
  if (n < 4) return;
  std::size_t half = (n + 1) / 2;
  std::vector<double> out(n);
  const double* s = x.data();
  const double* d = x.data() + half;
  for (std::size_t i = 0; i < half; ++i) {
    double dl = i > 0 ? d[i - 1] : (n - half > 0 ? d[0] : 0.0);
    double dr = i < n - half ? d[i] : (n - half > 0 ? d[n - half - 1] : 0.0);
    out[2 * i] = s[i] - 0.25 * (dl + dr);
  }
  for (std::size_t i = 0; i < n - half; ++i) {
    double left = out[2 * i];
    double right = 2 * i + 2 < n ? out[2 * i + 2] : out[2 * i];
    out[2 * i + 1] = d[i] + 0.5 * (left + right);
  }
  std::copy(out.begin(), out.end(), x.begin());
}

void multilevel_fwd(std::vector<double>& x) {
  std::size_t n = x.size();
  for (int l = 0; l < kLevels && n >= 8; ++l) {
    wavelet_fwd(x, n);
    n = (n + 1) / 2;
  }
}

void multilevel_inv(std::vector<double>& x) {
  std::size_t sizes[kLevels];
  std::size_t n = x.size();
  int levels = 0;
  for (int l = 0; l < kLevels && n >= 8; ++l) {
    sizes[levels++] = n;
    n = (n + 1) / 2;
  }
  for (int l = levels - 1; l >= 0; --l) wavelet_inv(x, sizes[l]);
}

template <typename T>
Bytes compress_typed(const Field& in, double eps, EbType eb) {
  auto d = in.as<T>();
  if (eb != EbType::ABS) throw CompressionError("SPERR only supports ABS bounds");
  if (!in.is_3d()) throw CompressionError("SPERR-3D requires 3D inputs");
  BaselineHeader h;
  h.magic = kMagic;
  h.dtype = in.dtype;
  h.eb = eb;
  h.eps = eps;
  h.count = d.size();
  for (int i = 0; i < 3; ++i) h.dims[i] = in.dims[i];
  h.derived = eps;

  const std::size_t n = d.size();
  std::vector<double> coeffs(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = static_cast<double>(d[i]);
    coeffs[i] = std::isfinite(v) ? v : 0.0;
  }
  multilevel_fwd(coeffs);
  // Uniform quantization with a transform-gain guard; the inverse transform
  // can still amplify a little more on unlucky inputs (-> minor violations).
  const double step = eps / 2.0;
  SzQuantizer<double> q(step / 2.0);
  SzPayload p;
  p.codes.resize(n);
  std::vector<double> recon(n), outliers;
  for (std::size_t i = 0; i < n; ++i)
    p.codes[i] = q.quantize(0.0, coeffs[i], recon[i], outliers);
  for (double o : outliers) append_scalar(p.outlier_bytes, o);

  // SPERR's correction pass: decode, find values outside the bound, and
  // store exact corrections for them.
  multilevel_inv(recon);
  std::vector<u8> corrections;
  u64 ncorr = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double orig = static_cast<double>(d[i]);
    if (!std::isfinite(orig) || std::abs(orig - recon[i]) > eps * 0.999) {
      append_scalar<u64>(corrections, i);
      append_scalar<T>(corrections, d[i]);
      ++ncorr;
    }
  }
  Bytes out;
  write_bheader(h, out);
  append_scalar<u64>(out, ncorr);
  out.insert(out.end(), corrections.begin(), corrections.end());
  Bytes payload = sz_pack(p);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

template <typename T>
std::vector<u8> decompress_typed(const Bytes& in, const BaselineHeader& h) {
  const std::size_t n = h.count;
  std::size_t pos = sizeof(BaselineHeader);
  if (pos + 8 > in.size()) throw CompressionError("sperr: truncated correction table");
  u64 ncorr;
  std::memcpy(&ncorr, in.data() + pos, 8);
  pos += 8;
  const std::size_t corr_bytes = ncorr * (8 + sizeof(T));
  if (pos + corr_bytes > in.size()) throw CompressionError("sperr: truncated corrections");
  const u8* corr = in.data() + pos;
  pos += corr_bytes;

  SzPayload p = sz_unpack(in.data() + pos, in.size() - pos);
  if (p.codes.size() != n) throw CompressionError("sperr: code count mismatch");
  SzQuantizer<double> q(h.eps / 4.0);
  std::vector<double> coeffs(n);
  std::span<const u8> ob(p.outlier_bytes);
  std::size_t oi = 0;
  for (std::size_t i = 0; i < n; ++i)
    coeffs[i] = p.codes[i] == 0 ? take_scalar<double>(ob, oi++) : q.reconstruct(0.0, p.codes[i]);
  multilevel_inv(coeffs);
  std::vector<u8> out(n * sizeof(T));
  T* values = reinterpret_cast<T*>(out.data());
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<T>(coeffs[i]);
  for (u64 c = 0; c < ncorr; ++c) {
    u64 idx;
    T v;
    std::memcpy(&idx, corr + c * (8 + sizeof(T)), 8);
    std::memcpy(&v, corr + c * (8 + sizeof(T)) + 8, sizeof(T));
    if (idx < n) values[idx] = v;
  }
  return out;
}

}  // namespace

Bytes SperrLikeCompressor::compress(const Field& in, double eps, EbType eb) const {
  if (in.dtype == DType::F32) return compress_typed<float>(in, eps, eb);
  return compress_typed<double>(in, eps, eb);
}

std::vector<u8> SperrLikeCompressor::decompress(const Bytes& stream) const {
  BaselineHeader h = read_bheader(stream, kMagic);
  if (h.dtype == DType::F32) return decompress_typed<float>(stream, h);
  return decompress_typed<double>(stream, h);
}

}  // namespace repro::baselines
