// src/temporal — streaming frame-sequence compression (ROADMAP item 5).
//
// A FrameEncoder holds the previously *decoded* frame as its reference and
// encodes each new frame as either
//
//   * an intra (I) frame — the unchanged PFPL chunk pipeline applied to the
//     frame's values, or
//   * a predicted (P) frame — per chunk, either the residual against the
//     reference's decoded values or the original values (intra fallback when
//     temporal correlation dies), packed into one *mixed field* that is
//     compressed as a single PFPL stream under a derived absolute bound. A
//     per-chunk mode bitmap records which chunks are residual-coded.
//
// Prediction is closed-loop: the residual is taken against what the decoder
// will actually hold (the previous frame's reconstruction), and the PFPL
// stream bounds |residual - residual_hat| <= abs_bound, so the per-frame
// error bound holds for every frame and never accumulates across frames.
//
//   ABS  sessions predict with abs_bound = eps.
//   NOA  sessions predict with abs_bound = eps * (max - min) of the *current*
//        original frame (the same range count_violations judges with); when
//        that derived bound is below the dtype's smallest positive normal
//        (PFPL's ABS validity floor) the frame falls back to intra coding.
//   REL  sessions always encode intra frames — a point-wise relative bound
//        does not translate into a uniform absolute bound on residuals.
//
// The per-chunk residual/intra decision is a sampled probe: k values of the
// chunk are costed under a log2-bins model for both codings and the cheaper
// side wins (ties go to intra). Chunks containing non-finite values in
// either the frame or the reference are never residual-coded.
//
// Every encode audits the frame's reconstruction against the session bound
// with metrics::count_violations (the external judge). If a predicted frame
// ever failed the audit — e.g. residual rounding at extreme magnitudes — the
// frame is transparently re-encoded intra, so the zero-violations invariant
// is unconditional. Audited-then-discarded P frames are counted.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "core/pfpl.hpp"

namespace repro::temporal {

enum class FrameType : u8 {
  Intra = 0,      ///< payload decodes standalone
  Predicted = 1,  ///< payload is a mixed residual/intra field vs the reference
};

inline const char* to_string(FrameType t) {
  return t == FrameType::Intra ? "I" : "P";
}

/// Immutable per-session parameters (shared by encoder, decoder, and the
/// PFPV container header).
struct SessionConfig {
  DType dtype = DType::F32;
  EbType eb = EbType::ABS;
  double eps = 1e-3;
  std::array<u32, 3> dims{1, 1, 0};     ///< frame shape, slowest-first (z,y,x)
  u32 keyframe_interval = 16;           ///< force an I frame every N frames
                                        ///< (0 = only when prediction is
                                        ///< impossible)
  pfpl::Executor exec = pfpl::Executor::Serial;
  u32 probe_samples = 64;               ///< values sampled per chunk probe

  std::size_t frame_values() const {
    return static_cast<std::size_t>(dims[0]) * dims[1] * dims[2];
  }
  std::size_t frame_bytes() const { return frame_values() * dtype_size(dtype); }
};

/// One encoded frame: a complete PFPL stream plus the temporal envelope.
struct EncodedFrame {
  u64 frame_index = 0;          ///< caller-supplied stream position
  FrameType type = FrameType::Intra;
  double abs_bound = 0.0;       ///< derived ABS bound of a P frame's mixed
                                ///< stream (0 for intra frames)
  Bytes chunk_modes;            ///< P frames: bit i set = chunk i is
                                ///< residual-coded (LSB-first; empty for I)
  Bytes payload;                ///< a complete PFPL stream
  std::size_t predicted_chunks = 0;
  std::size_t intra_chunks = 0;

  std::size_t byte_size() const { return chunk_modes.size() + payload.size(); }
};

/// Returns whether chunk `i` of a P frame is residual-coded.
bool chunk_predicted(const Bytes& modes, std::size_t i);

/// Stateful encoder for one frame stream. Not thread-safe; one session = one
/// stream = one encoder.
class FrameEncoder {
 public:
  /// Throws CompressionError on an invalid config (zero-value frames, bad
  /// eps for the bound type).
  explicit FrameEncoder(const SessionConfig& cfg);

  /// Encode the next frame. `frame` must match the session dtype and shape.
  /// `frame_index` is recorded in the result (the stream position — under a
  /// reconnected remote session it may be ahead of this encoder's local
  /// count); the I/P cadence follows the *encoder's* own frame count, so a
  /// fresh encoder always starts with an I frame.
  EncodedFrame encode(const Field& frame, u64 frame_index);
  EncodedFrame encode(const Field& frame) { return encode(frame, frames_encoded_); }

  /// Raw bytes of the most recent frame's reconstruction (what the decoder
  /// will output for it) — byte-identical to FrameDecoder's output.
  const std::vector<u8>& reference() const { return reference_; }

  const SessionConfig& config() const { return cfg_; }
  u64 frames_encoded() const { return frames_encoded_; }
  u64 intra_frames() const { return intra_frames_; }
  u64 predicted_frames() const { return predicted_frames_; }
  u64 predicted_chunks() const { return predicted_chunks_; }
  u64 intra_fallback_chunks() const { return intra_fallback_chunks_; }
  /// P frames discarded because their reconstruction failed the bound audit
  /// (re-encoded intra). The zero-violations invariant holds regardless.
  u64 audit_fallbacks() const { return audit_fallbacks_; }

 private:
  template <typename T>
  EncodedFrame encode_typed(const Field& frame, u64 frame_index);

  SessionConfig cfg_;
  std::vector<u8> reference_;  ///< empty until the first frame
  u64 frames_encoded_ = 0;
  u64 intra_frames_ = 0;
  u64 predicted_frames_ = 0;
  u64 predicted_chunks_ = 0;
  u64 intra_fallback_chunks_ = 0;
  u64 audit_fallbacks_ = 0;
};

/// Stateful decoder: feed it every frame of a stream in order (or start at
/// any I frame). Output is byte-identical to the encoder's closed-loop
/// reference, so encoder and decoder never drift.
class FrameDecoder {
 public:
  explicit FrameDecoder(const SessionConfig& cfg);

  /// Decode the next frame; returns the frame's raw scalar bytes. Throws
  /// CompressionError on a P frame with no reference (stream must start at
  /// an I frame) or on any payload/config mismatch.
  const std::vector<u8>& decode(const EncodedFrame& f);

  const SessionConfig& config() const { return cfg_; }
  u64 frames_decoded() const { return frames_decoded_; }

 private:
  template <typename T>
  void decode_typed(const EncodedFrame& f);

  SessionConfig cfg_;
  std::vector<u8> reference_;
  u64 frames_decoded_ = 0;
};

}  // namespace repro::temporal
