#include "net/poller.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <sys/epoll.h>
#define REPRO_NET_HAVE_EPOLL 1
#endif

#include "net/frame.hpp"  // NetError

namespace repro::net {

#ifdef REPRO_NET_HAVE_EPOLL
namespace {

u32 to_epoll(short events) {
  u32 ev = 0;
  if (events & POLLIN) ev |= EPOLLIN;
  if (events & POLLOUT) ev |= EPOLLOUT;
  return ev;
}

short from_epoll(u32 ev) {
  short r = 0;
  if (ev & EPOLLIN) r |= POLLIN;
  if (ev & EPOLLOUT) r |= POLLOUT;
  if (ev & EPOLLERR) r |= POLLERR;
  if (ev & EPOLLHUP) r |= POLLHUP;
  return r;
}

}  // namespace
#endif

Poller::Poller(bool prefer_epoll) {
#ifdef REPRO_NET_HAVE_EPOLL
  if (prefer_epoll) {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    // A failed epoll_create1 (e.g. fd exhaustion at startup) degrades to
    // poll(2) rather than refusing to serve.
  }
#else
  (void)prefer_epoll;
#endif
}

Poller::~Poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Poller::set(int fd, short events, u64 tag) {
  auto it = interest_.find(fd);
  if (it != interest_.end() && it->second.events == events && it->second.tag == tag)
    return;
  const bool known = it != interest_.end();
#ifdef REPRO_NET_HAVE_EPOLL
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = to_epoll(events);
    ev.data.u64 = tag;
    const int op = known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0) {
      // ADD on an fd epoll already tracks (or MOD on one it lost through a
      // close we were not told about) — retry with the other op before
      // giving up, so a missed remove() cannot wedge the loop.
      const int op2 = op == EPOLL_CTL_ADD ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
      if (::epoll_ctl(epfd_, op2, fd, &ev) != 0)
        throw NetError("net: epoll_ctl: " + std::string(std::strerror(errno)));
    }
  }
#endif
  if (known) {
    it->second.events = events;
    it->second.tag = tag;
  } else {
    interest_.emplace(fd, Interest{events, tag});
  }
}

void Poller::remove(int fd) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) return;
#ifdef REPRO_NET_HAVE_EPOLL
  if (epfd_ >= 0) {
    epoll_event ev{};  // ignored by DEL; non-null for pre-2.6.9 kernels
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }
#endif
  interest_.erase(it);
}

std::size_t Poller::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
#ifdef REPRO_NET_HAVE_EPOLL
  if (epfd_ >= 0) {
    epoll_event evs[256];
    const int rc = ::epoll_wait(epfd_, evs, 256, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) return 0;
      throw NetError("net: epoll_wait: " + std::string(std::strerror(errno)));
    }
    out.reserve(static_cast<std::size_t>(rc));
    for (int i = 0; i < rc; ++i)
      out.push_back(Event{evs[i].data.u64, from_epoll(evs[i].events)});
    return out.size();
  }
#endif
  std::vector<pollfd> pfds;
  std::vector<u64> tags;
  pfds.reserve(interest_.size());
  tags.reserve(interest_.size());
  for (const auto& [fd, in] : interest_) {
    pfds.push_back(pollfd{fd, in.events, 0});
    tags.push_back(in.tag);
  }
  const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return 0;
    throw NetError("net: poll: " + std::string(std::strerror(errno)));
  }
  for (std::size_t i = 0; i < pfds.size(); ++i)
    if (pfds[i].revents != 0) out.push_back(Event{tags[i], pfds[i].revents});
  return out.size();
}

}  // namespace repro::net
