// Byte-oriented LZ77 compressor (LZ4-style token format, hash-chain match
// finder). Stands in for the ZSTD/GZIP general-purpose backends that SZ2/SZ3
// and SPERR apply after entropy coding (paper Section VI) — same algorithmic
// class (dictionary coder), deliberately simple.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace repro::lossless {

/// Compress `in`; self-describing (decompressed size is stored).
Bytes lz_encode(std::span<const u8> in);

/// Decompress a stream produced by lz_encode.
std::vector<u8> lz_decode(const u8* data, std::size_t size);

inline std::vector<u8> lz_decode(const Bytes& b) { return lz_decode(b.data(), b.size()); }

}  // namespace repro::lossless
