#include "data/evolving.hpp"

#include <cmath>
#include <stdexcept>

#include "data/rng.hpp"

namespace repro::data {
namespace {

/// Periodic value-noise lattice with trilinear smoothstep sampling. The
/// lattice is fixed at construction; sampling at slowly moving coordinates
/// yields a smooth field in both space and time.
class Lattice3 {
 public:
  Lattice3(Rng& rng, std::size_t n) : n_(n), v_(n * n * n) {
    for (double& x : v_) x = rng.uniform(-1.0, 1.0);
  }

  double sample(double x, double y, double z) const {
    const auto wrap = [this](long i) {
      long m = i % static_cast<long>(n_);
      return static_cast<std::size_t>(m < 0 ? m + static_cast<long>(n_) : m);
    };
    const auto smooth = [](double t) { return t * t * (3.0 - 2.0 * t); };
    const double fx = std::floor(x), fy = std::floor(y), fz = std::floor(z);
    const double tx = smooth(x - fx), ty = smooth(y - fy), tz = smooth(z - fz);
    const long ix = static_cast<long>(fx), iy = static_cast<long>(fy),
               iz = static_cast<long>(fz);
    double c[2][2][2];
    for (int dz = 0; dz < 2; ++dz)
      for (int dy = 0; dy < 2; ++dy)
        for (int dx = 0; dx < 2; ++dx)
          c[dz][dy][dx] = at(wrap(ix + dx), wrap(iy + dy), wrap(iz + dz));
    const auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
    double yz[2][2];
    for (int dz = 0; dz < 2; ++dz)
      for (int dy = 0; dy < 2; ++dy)
        yz[dz][dy] = lerp(c[dz][dy][0], c[dz][dy][1], tx);
    const double z0 = lerp(yz[0][0], yz[0][1], ty);
    const double z1 = lerp(yz[1][0], yz[1][1], ty);
    return lerp(z0, z1, tz);
  }

 private:
  double at(std::size_t x, std::size_t y, std::size_t z) const {
    return v_[(z * n_ + y) * n_ + x];
  }
  std::size_t n_;
  std::vector<double> v_;
};

constexpr int kOctaves = 3;
constexpr double kRoughness = 0.55;
constexpr std::size_t kLatticeN = 8;

/// Multi-octave advected sample at cell (z,y,x) of a dims-shaped frame at
/// time t. `drift` is cells-per-frame at octave 0.
double advected(const std::vector<Lattice3>& octaves,
                const std::array<std::size_t, 3>& dims, std::size_t z, std::size_t y,
                std::size_t x, double t, double drift) {
  const double nx = static_cast<double>(kLatticeN);
  const double ux = static_cast<double>(x) / static_cast<double>(dims[2]) * nx;
  const double uy = static_cast<double>(y) / static_cast<double>(dims[1]) * nx;
  const double uz = static_cast<double>(z) / static_cast<double>(dims[0]) * nx;
  double sum = 0.0, amp = 1.0, freq = 1.0;
  for (int o = 0; o < kOctaves; ++o) {
    // Per-octave velocities differ so the field deforms, not just translates.
    // Dividing by freq keeps the per-frame displacement a constant fraction
    // of each octave's feature size — otherwise the fine octaves decorrelate
    // within a frame or two and the suite stops exercising the P-frame path.
    const double vx = drift * (1.0 + 0.31 * o) / freq;
    const double vy = drift * (0.7 - 0.23 * o) / freq;
    const double vz = drift * 0.35 * o / freq;
    sum += amp * octaves[static_cast<std::size_t>(o)].sample(
                     ux * freq - vx * t, uy * freq - vy * t, uz * freq + vz * t);
    amp *= kRoughness;
    freq *= 2.0;
  }
  return sum;
}

std::array<std::size_t, 3> pick_dims(std::size_t target_values) {
  // z-slabbed 3D shape: z small so chunk-aligned slabs (regime suite) exist.
  const std::size_t z = 4;
  std::size_t s = 1;
  while ((s + 1) * (s + 1) * z <= target_values) ++s;
  return {z, s, s};
}

using Gen = void (*)(FrameSequence& seq, std::size_t frames, u64 seed);

void gen_advect(FrameSequence& seq, std::size_t frames, u64 seed) {
  Rng rng(seed);
  std::vector<Lattice3> octaves;
  for (int o = 0; o < kOctaves; ++o) octaves.emplace_back(rng, kLatticeN);
  const auto& d = seq.dims;
  for (std::size_t t = 0; t < frames; ++t) {
    std::vector<float>& out = seq.f32.emplace_back(seq.frame_values());
    std::size_t i = 0;
    for (std::size_t z = 0; z < d[0]; ++z)
      for (std::size_t y = 0; y < d[1]; ++y)
        for (std::size_t x = 0; x < d[2]; ++x)
          out[i++] = static_cast<float>(
              100.0 * advected(octaves, d, z, y, x, static_cast<double>(t), 0.01));
  }
}

void gen_diffuse(FrameSequence& seq, std::size_t frames, u64 seed) {
  Rng rng(seed);
  constexpr int kBlobs = 24;
  struct Blob {
    double cx, cy, cz, vx, vy, amp, w0;
  };
  std::vector<Blob> blobs;
  const auto& d = seq.dims;
  for (int b = 0; b < kBlobs; ++b)
    blobs.push_back({rng.uniform(0.0, static_cast<double>(d[2])),
                     rng.uniform(0.0, static_cast<double>(d[1])),
                     rng.uniform(0.0, static_cast<double>(d[0])),
                     rng.uniform(-0.15, 0.15), rng.uniform(-0.15, 0.15),
                     rng.uniform(0.5, 4.0),
                     rng.uniform(1.5, 4.0)});
  for (std::size_t t = 0; t < frames; ++t) {
    std::vector<double>& out = seq.f64.emplace_back(seq.frame_values());
    const double td = static_cast<double>(t);
    std::size_t i = 0;
    for (std::size_t z = 0; z < d[0]; ++z)
      for (std::size_t y = 0; y < d[1]; ++y)
        for (std::size_t x = 0; x < d[2]; ++x) {
          double v = 0.0;
          for (const Blob& b : blobs) {
            const double w2 = b.w0 * b.w0 + 0.4 * td;  // diffusive widening
            const double dx = static_cast<double>(x) - (b.cx + b.vx * td);
            const double dy = static_cast<double>(y) - (b.cy + b.vy * td);
            const double dz = static_cast<double>(z) - b.cz;
            const double r2 = dx * dx + dy * dy + dz * dz;
            // Mass-conserving amplitude decay as the blob spreads.
            v += b.amp * (b.w0 * b.w0 / w2) * std::exp(-r2 / (2.0 * w2));
          }
          out[i++] = v;
        }
  }
}

void gen_regime(FrameSequence& seq, std::size_t frames, u64 seed) {
  Rng rng(seed);
  std::vector<Lattice3> octaves;
  for (int o = 0; o < kOctaves; ++o) octaves.emplace_back(rng, kLatticeN);
  const auto& d = seq.dims;
  const std::size_t switch_at = frames / 2;
  const std::size_t chaotic_z = d[0] / 2;  // slabs >= this go chaotic
  for (std::size_t t = 0; t < frames; ++t) {
    std::vector<float>& out = seq.f32.emplace_back(seq.frame_values());
    // After the switch, the chaotic slabs are re-seeded *per frame*: smooth
    // in space (so intra coding still works) but uncorrelated in time.
    const bool chaotic = t >= switch_at;
    Rng frame_rng(seed ^ (0x9E3779B97F4A7C15ull * (t + 1)));
    std::vector<Lattice3> fresh;
    if (chaotic)
      for (int o = 0; o < kOctaves; ++o) fresh.emplace_back(frame_rng, kLatticeN);
    std::size_t i = 0;
    for (std::size_t z = 0; z < d[0]; ++z)
      for (std::size_t y = 0; y < d[1]; ++y)
        for (std::size_t x = 0; x < d[2]; ++x) {
          const bool this_chaotic = chaotic && z >= chaotic_z;
          const auto& lat = this_chaotic ? fresh : octaves;
          const double tt = this_chaotic ? 0.0 : static_cast<double>(t);
          out[i++] =
              static_cast<float>(100.0 * advected(lat, d, z, y, x, tt, 0.01));
        }
  }
}

struct Kind {
  const char* kind;
  Gen gen;
};

constexpr Kind kKinds[] = {
    {"advect", gen_advect},
    {"diffuse", gen_diffuse},
    {"regime", gen_regime},
};

}  // namespace

std::vector<EvolvingSpec> evolving_suites() {
  return {
      {"advect", "smoothly advected climate-like field", DType::F32, "advect"},
      {"diffuse", "diffusing drifting particle densities", DType::F64, "diffuse"},
      {"regime", "advected field with a mid-stream correlation-killing regime change",
       DType::F32, "regime"},
  };
}

EvolvingSpec find_evolving(const std::string& name) {
  for (auto& s : evolving_suites())
    if (s.name == name) return s;
  throw std::invalid_argument("unknown evolving suite: " + name);
}

FrameSequence generate_evolving(const EvolvingSpec& spec, std::size_t target_values,
                                std::size_t frames, u64 seed) {
  FrameSequence seq;
  seq.name = spec.name;
  seq.dtype = spec.dtype;
  seq.dims = pick_dims(target_values);
  // Salt the seed with the suite name so suites never share a stream.
  u64 salted = seed;
  for (char c : spec.kind) salted = salted * 1099511628211ull + static_cast<u8>(c);
  for (const Kind& k : kKinds) {
    if (spec.kind == k.kind) {
      k.gen(seq, frames, salted);
      return seq;
    }
  }
  throw std::invalid_argument("unknown evolving generator kind: " + spec.kind);
}

}  // namespace repro::data
