// Tests for the flight-recorder subsystem added with kernel attribution:
// per-kernel byte/time accounting, the stall watchdog, the async-signal-safe
// crash reporter (validated by actually crashing a forked child), and the
// FlightRecorder ring + /history document round-trip.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pfpl.hpp"
#include "obs/control.hpp"
#include "obs/crash.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"

using namespace repro;

namespace {

struct ObsGuard {
  explicit ObsGuard(bool on) : prev(obs::enabled()) { obs::set_enabled(on); }
  ~ObsGuard() { obs::set_enabled(prev); }
  bool prev;
};

std::vector<float> smooth(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(i) * 0.001f + (i % 17) * 0.01f;
  return v;
}

}  // namespace

// ------------------------------------------------------ kernel attribution --

TEST(ObsKernels, AttributesAllEightKernelsOnRoundTrip) {
  ObsGuard guard(true);
  obs::MetricsRegistry::global().reset();
  auto v = smooth(1 << 16);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  auto raw = pfpl::decompress(c);
  ASSERT_EQ(raw.size(), v.size() * sizeof(float));

  const std::vector<obs::KernelStat> stats = obs::kernel_stats();
  ASSERT_EQ(stats.size(), static_cast<std::size_t>(obs::kKernelCount));
  u64 encode_us = 0;
  for (const obs::KernelStat& st : stats) {
    EXPECT_GT(st.calls, 0u) << st.name;
    EXPECT_GT(st.bytes, 0u) << st.name;
    if (st.encode) encode_us += st.us;
  }
  // Per-call flooring guarantees the attributed encode time can never exceed
  // the enclosing per-chunk encode time (the `pfpl profile` invariant).
  const u64 chunk_us =
      static_cast<u64>(obs::MetricsRegistry::global().histogram("core.encode_chunk_us").sum());
  EXPECT_LE(encode_us, chunk_us + 1);  // +1: quantize is timed outside chunks

  // The report JSON parses and covers both directions.
  obs::JsonValue rep = obs::parse_json(obs::kernel_report_json());
  ASSERT_TRUE(rep.at("encode").is_array());
  ASSERT_TRUE(rep.at("decode").is_array());
  EXPECT_EQ(rep.at("encode").arr.size(), 4u);
  EXPECT_EQ(rep.at("decode").arr.size(), 4u);
  for (const obs::JsonValue& k : rep.at("encode").arr) {
    EXPECT_TRUE(k.has("name"));
    EXPECT_GT(k.at("calls").num, 0);
    EXPECT_GE(k.at("MBps").num, 0);
  }
  EXPECT_FALSE(obs::kernel_table_text().empty());
}

TEST(ObsKernels, DisabledRecordsNothing) {
  ObsGuard guard(false);
  obs::MetricsRegistry::global().reset();
  auto v = smooth(1 << 12);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  (void)pfpl::decompress(c);
  for (const obs::KernelStat& st : obs::kernel_stats()) {
    EXPECT_EQ(st.calls, 0u) << st.name;
    EXPECT_EQ(st.bytes, 0u) << st.name;
  }
  EXPECT_TRUE(obs::kernel_table_text().empty());
}

// --------------------------------------------------------------- watchdog ---

TEST(Watchdog, DetectsStallOncePerBusySpan) {
  obs::Watchdog& wd = obs::Watchdog::global();
  wd.reset_for_tests();
  const int slot = wd.register_slot("test.worker");
  ASSERT_GE(slot, 0);
  wd.arm(20);  // 20 ms threshold

  wd.begin(slot, 777);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  std::vector<obs::Watchdog::Stall> stalls = wd.check();
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].slot, "test.worker");
  EXPECT_GE(stalls[0].busy_ms, 20u);
  EXPECT_EQ(stalls[0].detail, 777u);

  // Same busy span: already reported, not re-reported.
  EXPECT_TRUE(wd.check().empty());
  wd.end(slot);

  // A new span re-arms the report.
  wd.begin(slot, 778);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  stalls = wd.check();
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].detail, 778u);
  wd.end(slot);
  EXPECT_EQ(wd.stalls_detected(), 2u);
  wd.reset_for_tests();
}

TEST(Watchdog, IdleOrFastSpansNeverReport) {
  obs::Watchdog& wd = obs::Watchdog::global();
  wd.reset_for_tests();
  const int slot = wd.register_slot("test.fast");
  ASSERT_GE(slot, 0);
  wd.arm(200);
  EXPECT_TRUE(wd.check().empty());  // idle slot
  wd.begin(slot, 1);
  EXPECT_TRUE(wd.check().empty());  // busy but within threshold
  wd.end(slot);
  EXPECT_TRUE(wd.check().empty());
  EXPECT_EQ(wd.stalls_detected(), 0u);
  wd.reset_for_tests();
}

TEST(Watchdog, DisarmedScopeIsInert) {
  obs::Watchdog& wd = obs::Watchdog::global();
  wd.reset_for_tests();
  EXPECT_FALSE(wd.armed());
  const int slot = wd.register_slot("test.inert");
  {
    obs::StallScope scope(slot, 42);  // disarmed: no begin recorded
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  wd.arm(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(wd.check().empty());  // the scope never registered a start
  wd.reset_for_tests();
}

// ------------------------------------------------------------ crash report --

TEST(CrashHandler, ForkedChildCrashWritesParseableReport) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "pfpl_crash_test";
  std::error_code ec;
  fs::remove_all(dir, ec);

  obs::install_crash_handler(dir.string());
  ASSERT_TRUE(obs::crash_handler_installed());
  obs::set_crash_body(obs::minimal_crash_body() + ",\"marker\":\"unit-test\"");
  const std::string path = obs::crash_report_path();
  ASSERT_FALSE(path.empty());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: inherits the handler and the pre-rendered body; dies by SIGSEGV
    // re-raise after the handler writes the report.
    ::raise(SIGSEGV);
    _exit(99);  // unreachable if the handler chain works
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string doc((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  obs::JsonValue v = obs::parse_json(doc);
  EXPECT_EQ(v.at("schema").str, "pfpl-crash/1");
  EXPECT_EQ(v.at("marker").str, "unit-test");
  EXPECT_EQ(v.at("signal").str, "SIGSEGV");
  EXPECT_DOUBLE_EQ(v.at("signo").num, SIGSEGV);
  EXPECT_TRUE(v.at("build").has("compiler"));

  // Restore default dispositions so a later real crash in this binary is not
  // routed into the test directory.
  ::signal(SIGSEGV, SIG_DFL);
  ::signal(SIGABRT, SIG_DFL);
  ::signal(SIGBUS, SIG_DFL);
  fs::remove_all(dir, ec);
}

TEST(CrashHandler, MinimalBodyClosesToValidJson) {
  obs::JsonValue v = obs::parse_json(obs::minimal_crash_body() + "}");
  EXPECT_EQ(v.at("schema").str, "pfpl-crash/1");
  EXPECT_GT(v.at("pid").num, 0);
}

// -------------------------------------------------------- flight recorder ---

TEST(FlightRecorder, NotRunningUntilConfiguredAndStarted) {
  // Zero-footprint: merely linking the recorder must not spin up a thread.
  EXPECT_FALSE(obs::FlightRecorder::global().running());
}

TEST(FlightRecorder, HistoryDocumentRoundTripsAndRingIsBounded) {
  ObsGuard guard(true);
  obs::FlightRecorder& fr = obs::FlightRecorder::global();
  fr.clear();
  obs::FlightRecorder::Options o;
  o.interval_ms = 10;
  o.depth = 4;
  o.extra = [] { return std::string("{\"probe\":123}"); };
  fr.configure(o);

  obs::MetricsRegistry::global().reset();
  obs::MetricsRegistry::global().counter("flight.test.count").add(7);

  fr.start();
  EXPECT_TRUE(fr.running());
  // Ten manual samples on a depth-4 ring: the ring must cap, seq must keep
  // counting.
  for (int i = 0; i < 10; ++i) fr.sample_now();
  EXPECT_LE(fr.snapshot_count(), 4u);
  fr.stop();
  EXPECT_FALSE(fr.running());

  obs::JsonValue v = obs::parse_json(fr.history_json());
  EXPECT_EQ(v.at("schema").str, "pfpl-flight/1");
  EXPECT_FALSE(v.at("running").b);
  EXPECT_DOUBLE_EQ(v.at("depth").num, 4);
  const auto& snaps = v.at("snapshots").arr;
  ASSERT_GE(snaps.size(), 1u);
  ASSERT_LE(snaps.size(), 4u);
  double prev_seq = -1;
  for (const obs::JsonValue& s : snaps) {
    EXPECT_GT(s.at("seq").num, prev_seq);
    prev_seq = s.at("seq").num;
    EXPECT_GT(s.at("ts_ms").num, 0);
    // The registry snapshot and the caller-supplied extra both ride along.
    EXPECT_DOUBLE_EQ(s.at("metrics").at("counters").at("flight.test.count").num, 7);
    EXPECT_DOUBLE_EQ(s.at("extra").at("probe").num, 123);
  }
  fr.clear();
  EXPECT_EQ(fr.snapshot_count(), 0u);
}

TEST(FlightRecorder, SamplerThreadSamplesOnItsOwn) {
  ObsGuard guard(true);
  obs::FlightRecorder& fr = obs::FlightRecorder::global();
  fr.clear();
  obs::FlightRecorder::Options o;
  o.interval_ms = 5;
  o.depth = 8;
  fr.configure(o);
  fr.start();
  // First sample is immediate; wait for at least one more from the cadence.
  for (int i = 0; i < 200 && fr.snapshot_count() < 2; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  fr.stop();
  EXPECT_GE(fr.snapshot_count(), 2u);
  fr.clear();
}
