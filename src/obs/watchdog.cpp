#include "obs/watchdog.hpp"

#include <chrono>
#include <cstring>

#include "obs/event_log.hpp"
#include "obs/json.hpp"

namespace repro::obs {

Watchdog& Watchdog::global() {
  static Watchdog* w = new Watchdog();  // leaked: alive for any late worker
  return *w;
}

u64 Watchdog::now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

int Watchdog::register_slot(const std::string& name) {
  const int id = slot_count_.fetch_add(1, std::memory_order_relaxed);
  if (id >= kMaxSlots) {
    slot_count_.store(kMaxSlots, std::memory_order_relaxed);
    return -1;
  }
  Slot& s = slots_[id];
  std::strncpy(s.name, name.c_str(), sizeof(s.name) - 1);
  s.name[sizeof(s.name) - 1] = '\0';
  return id;
}

void Watchdog::arm(u64 threshold_ms) {
  threshold_ns_.store(threshold_ms * 1000000, std::memory_order_relaxed);
}

void Watchdog::begin(int slot, u64 detail) {
  if (slot < 0 || slot >= kMaxSlots) return;
  Slot& s = slots_[slot];
  s.detail.store(detail, std::memory_order_relaxed);
  s.generation.fetch_add(1, std::memory_order_relaxed);
  // start_ns is the checker's "busy" flag: publish it last.
  s.start_ns.store(now_ns(), std::memory_order_release);
}

void Watchdog::end(int slot) {
  if (slot < 0 || slot >= kMaxSlots) return;
  slots_[slot].start_ns.store(0, std::memory_order_release);
}

std::vector<Watchdog::Stall> Watchdog::check() {
  std::vector<Stall> out;
  const u64 threshold = threshold_ns_.load(std::memory_order_relaxed);
  if (threshold == 0) return out;
  const u64 now = now_ns();
  const int n = std::min(slot_count_.load(std::memory_order_relaxed), kMaxSlots);
  for (int i = 0; i < n; ++i) {
    Slot& s = slots_[i];
    const u64 start = s.start_ns.load(std::memory_order_acquire);
    if (start == 0 || now - start <= threshold) continue;
    const u64 gen = s.generation.load(std::memory_order_relaxed);
    if (s.reported.load(std::memory_order_relaxed) == gen) continue;  // already flagged
    // Re-check busyness after reading the generation: if the unit finished
    // in between, the next begin() bumps the generation and stays eligible.
    if (s.start_ns.load(std::memory_order_acquire) != start) continue;
    s.reported.store(gen, std::memory_order_relaxed);
    Stall st;
    st.slot = s.name;
    st.busy_ms = (now - start) / 1000000;
    st.detail = s.detail.load(std::memory_order_relaxed);
    out.push_back(st);
  }
  if (!out.empty()) {
    stalls_.fetch_add(out.size(), std::memory_order_relaxed);
    EventLog& log = EventLog::global();
    for (const Stall& st : out) {
      if (!log.would_log(LogLevel::Warn)) break;
      JsonWriter w;
      w.begin_object();
      w.kv("slot", st.slot);
      w.kv("busy_ms", static_cast<unsigned long long>(st.busy_ms));
      w.kv("threshold_ms", static_cast<unsigned long long>(threshold / 1000000));
      w.kv("detail", static_cast<unsigned long long>(st.detail));
      w.end_object();
      log.emit(LogLevel::Warn, "stall", w.take());
    }
  }
  return out;
}

void Watchdog::reset_for_tests() {
  threshold_ns_.store(0, std::memory_order_relaxed);
  const int n = std::min(slot_count_.load(std::memory_order_relaxed), kMaxSlots);
  for (int i = 0; i < n; ++i) {
    slots_[i].start_ns.store(0, std::memory_order_relaxed);
    slots_[i].generation.store(0, std::memory_order_relaxed);
    slots_[i].reported.store(0, std::memory_order_relaxed);
    slots_[i].detail.store(0, std::memory_order_relaxed);
    slots_[i].name[0] = '\0';
  }
  slot_count_.store(0, std::memory_order_relaxed);
  stalls_.store(0, std::memory_order_relaxed);
}

}  // namespace repro::obs
