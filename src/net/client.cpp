#include "net/client.hpp"

#include <unistd.h>

#include <chrono>
#include <cstring>

#include <thread>

#include "common/checksum.hpp"
#include "common/hash.hpp"
#include "net/backoff.hpp"
#include "obs/metrics.hpp"

namespace repro::net {
namespace {

/// Client-side latency histogram (microseconds, whole round trip).
obs::Histogram& client_request_us() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("net.client.request_us");
  return h;
}

u64 now_us() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

}  // namespace

Client::Client(Options opts) : opts_(std::move(opts)) {}

Client::~Client() = default;
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;

void Client::ensure_connected() {
  if (sock_.valid()) return;
  sock_ = tcp_connect(opts_.host, opts_.port, opts_.connect_timeout_ms);
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
}

u64 Client::fresh_id() {
  if (next_id_ == 0) {
    // Seed the id counter per client instance (pid + clock + object address)
    // so ids from different clients — and different processes — land in
    // disjoint ranges and a server-side slow-log/trace entry names exactly
    // one request. Probabilistic, not coordinated: 64 bits is plenty.
    struct {
      u64 pid;
      u64 t;
      u64 self;
    } seed{static_cast<u64>(::getpid()),
           static_cast<u64>(std::chrono::steady_clock::now().time_since_epoch().count()),
           reinterpret_cast<u64>(this)};
    const common::Hash128 h = common::hash128(&seed, sizeof seed);
    next_id_ = h.hi ? h.hi : 1;  // 0 means "no context" in traces; avoid it
  }
  u64 id = next_id_++;
  if (id == 0) id = next_id_++;  // counter wrapped across 0
  last_id_ = id;
  return id;
}

Frame Client::roundtrip_once(const FrameHeader& h, const void* payload, std::size_t n) {
  // Every failure below carries the request_id, so a client-side error can
  // be matched against the server's slow-request log and trace spans.
  const std::string id_tag = " (request_id " + std::to_string(h.request_id) + ")";
  try {
    ensure_connected();
    const Bytes wire = encode_frame(h, payload, n);
    send_all(sock_.fd(), wire.data(), wire.size(), opts_.request_timeout_ms);

    u8 hdr[kFrameHeaderSize];
    recv_all(sock_.fd(), hdr, sizeof(hdr), opts_.request_timeout_ms);
    FrameHeader rh = decode_frame_header(hdr);  // NetError on bad magic/version
    if (!rh.is_response() || rh.base_op() != h.base_op())
      throw NetError("PFPN: response op mismatch (sent " +
                     std::string(to_string(static_cast<Op>(h.base_op()))) + ", got op " +
                     std::to_string(rh.op) + ")");
    if (rh.request_id != h.request_id)
      throw NetError("PFPN: response id mismatch (sent " + std::to_string(h.request_id) +
                     ", got " + std::to_string(rh.request_id) + ")");
    if (rh.payload_len > opts_.max_response_payload)
      throw NetError("PFPN: response payload of " + std::to_string(rh.payload_len) +
                     " bytes exceeds the client limit");
    Frame out;
    out.header = rh;
    out.payload.resize(static_cast<std::size_t>(rh.payload_len));
    if (rh.payload_len)
      recv_all(sock_.fd(), out.payload.data(), out.payload.size(),
               opts_.request_timeout_ms);
    if (common::crc32(out.payload.data(), out.payload.size()) != rh.payload_crc)
      throw NetError("PFPN: response payload CRC mismatch");
    if (rh.status != static_cast<u16>(Status::Ok)) {
      const std::string text(out.payload.begin(), out.payload.end());
      throw RemoteError(rh.status, "PFPN: server error " + status_name(rh.status) +
                                       (text.empty() ? "" : ": " + text) + id_tag);
    }
    return out;
  } catch (const RemoteError&) {
    throw;  // already tagged above
  } catch (const NetError& e) {
    throw NetError(std::string(e.what()) + id_tag);
  }
}

Frame Client::roundtrip(const FrameHeader& base, const void* payload, std::size_t n) {
  FrameHeader h = base;
  const u64 t0 = now_us();
  const unsigned attempts = opts_.retry ? std::max(opts_.max_attempts, 1u) : 1;
  // Jitter state seeded from the client's id stream: deterministic per
  // client, decorrelated across clients (fresh_id() seeds from pid/clock/
  // address).
  BackoffJitter jitter(next_id_ ^ 0xC2B2AE3D27D4EB4Full);
  for (unsigned attempt = 1;; ++attempt) {
    h.request_id = fresh_id();
    try {
      ++attempts_;
      Frame f = roundtrip_once(h, payload, n);
      ++requests_;
      client_request_us().record(now_us() - t0);
      return f;
    } catch (const RemoteError&) {
      throw;  // the server answered; retrying would repeat the same refusal
    } catch (const NetError&) {
      // Transport failure: the connection state is unknown, so drop it and
      // retry on a fresh one (requests are pure => idempotent), backing off
      // between attempts so a dead server is not hammered in a tight loop.
      sock_.close();
      if (attempt >= attempts) throw;
      const int ms =
          backoff_ms(attempt, opts_.backoff_base_ms, opts_.backoff_max_ms, jitter);
      if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
}

Bytes Client::compress(const void* raw, std::size_t n, DType dtype, EbType eb,
                       double eps) {
  FrameHeader h;
  h.op = static_cast<u8>(Op::Compress);
  h.dtype = static_cast<u8>(dtype);
  h.eb_type = static_cast<u8>(eb);
  h.eps = eps;
  return roundtrip(h, raw, n).payload;
}

std::vector<u8> Client::decompress(const Bytes& stream) {
  FrameHeader h;
  h.op = static_cast<u8>(Op::Decompress);
  return roundtrip(h, stream.data(), stream.size()).payload;
}

std::string Client::stats() {
  FrameHeader h;
  h.op = static_cast<u8>(Op::Stats);
  Frame f = roundtrip(h, nullptr, 0);
  return std::string(f.payload.begin(), f.payload.end());
}

std::string Client::metrics(bool prom) {
  return metrics_fmt(prom ? "prom" : "json");
}

std::string Client::metrics_fmt(const std::string& fmt) {
  FrameHeader h;
  h.op = static_cast<u8>(Op::Metrics);
  Frame f = roundtrip(h, fmt.data(), fmt.size());
  return std::string(f.payload.begin(), f.payload.end());
}

void Client::ping() {
  FrameHeader h;
  h.op = static_cast<u8>(Op::Ping);
  roundtrip(h, nullptr, 0);
}

Bytes Client::shardmap_fetch(const Bytes& mine) {
  FrameHeader h;
  h.op = static_cast<u8>(Op::ShardMap);
  return roundtrip(h, mine.data(), mine.size()).payload;
}

std::string Client::health() {
  FrameHeader h;
  h.op = static_cast<u8>(Op::Health);
  Frame f = roundtrip(h, nullptr, 0);
  return std::string(f.payload.begin(), f.payload.end());
}

u64 Client::stream_open(DType dtype, EbType eb, double eps,
                        const std::array<u32, 3>& dims, u32 keyframe_interval) {
  FrameHeader h;
  h.op = static_cast<u8>(Op::StreamOpen);
  h.dtype = static_cast<u8>(dtype);
  h.eb_type = static_cast<u8>(eb);
  h.eps = eps;
  u8 body[16];
  for (int d = 0; d < 3; ++d)
    for (int i = 0; i < 4; ++i)
      body[d * 4 + i] = static_cast<u8>(dims[static_cast<std::size_t>(d)] >> (8 * i));
  for (int i = 0; i < 4; ++i) body[12 + i] = static_cast<u8>(keyframe_interval >> (8 * i));
  Frame f = roundtrip(h, body, sizeof body);
  if (f.payload.size() != 8)
    throw NetError("PFPN: STREAM_OPEN response is not a session id");
  u64 sid = 0;
  for (int i = 0; i < 8; ++i) sid |= static_cast<u64>(f.payload[static_cast<std::size_t>(i)]) << (8 * i);
  return sid;
}

Bytes Client::stream_frame(u64 sid, u64 frame_index, const void* raw, std::size_t n) {
  FrameHeader h;
  h.op = static_cast<u8>(Op::StreamFrame);
  Bytes body(16 + n);
  for (int i = 0; i < 8; ++i) body[static_cast<std::size_t>(i)] = static_cast<u8>(sid >> (8 * i));
  for (int i = 0; i < 8; ++i)
    body[static_cast<std::size_t>(8 + i)] = static_cast<u8>(frame_index >> (8 * i));
  std::memcpy(body.data() + 16, raw, n);
  return roundtrip(h, body.data(), body.size()).payload;
}

void Client::stream_close(u64 sid) {
  FrameHeader h;
  h.op = static_cast<u8>(Op::StreamClose);
  u8 body[8];
  for (int i = 0; i < 8; ++i) body[i] = static_cast<u8>(sid >> (8 * i));
  roundtrip(h, body, sizeof body);
}

void Client::shutdown_server() {
  FrameHeader h;
  h.op = static_cast<u8>(Op::Shutdown);
  roundtrip(h, nullptr, 0);
}

}  // namespace repro::net
