// CPU/GPU bit-compatibility tests — the reproduction of the paper's central
// portability claim: "bit-for-bit identical deterministic compressed and
// decompressed output on both types of devices."
//
// The GPU side is the simulated CUDA algorithm (src/sim): warp-shuffle bit
// transposes, block-wide scans, decoupled look-back concatenation. Every test
// asserts *byte* equality, not just value equality.
#include <gtest/gtest.h>

#include <numeric>

#include "core/pfpl.hpp"
#include "core/pipeline.hpp"
#include "data/rng.hpp"
#include "sim/block.hpp"
#include "sim/gpu_pipeline.hpp"
#include "sim/lookback.hpp"
#include "sim/warp.hpp"

using namespace repro;
using pfpl::Executor;
using pfpl::Params;

// --- primitive equivalence ---------------------------------------------------

TEST(SimWarp, TransposeMatchesCpu32) {
  data::Rng rng(41);
  for (int t = 0; t < 200; ++t) {
    u32 cpu[32], gpu[32];
    for (int i = 0; i < 32; ++i) cpu[i] = gpu[i] = static_cast<u32>(rng.next_u64());
    bits::transpose_bits_32(cpu);
    sim::warp_transpose_bits(gpu);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(cpu[i], gpu[i]);
  }
}

TEST(SimWarp, TransposeMatchesCpu64) {
  data::Rng rng(42);
  for (int t = 0; t < 100; ++t) {
    u64 cpu[64], gpu[64];
    for (int i = 0; i < 64; ++i) cpu[i] = gpu[i] = rng.next_u64();
    bits::transpose_bits_64(cpu);
    sim::warp_transpose_bits(gpu);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(cpu[i], gpu[i]);
  }
}

TEST(SimBlock, ScanMatchesStd) {
  data::Rng rng(43);
  for (std::size_t n : {1u, 2u, 3u, 31u, 32u, 1000u, 4096u}) {
    std::vector<u32> a(n), want(n);
    for (auto& x : a) x = static_cast<u32>(rng.next_u64() & 0xFFFF);
    std::inclusive_scan(a.begin(), a.end(), want.begin());
    sim::block_inclusive_scan(a.data(), n);
    EXPECT_EQ(a, want);
  }
}

TEST(SimLookback, MatchesExclusiveScan) {
  data::Rng rng(44);
  for (std::size_t n : {0u, 1u, 2u, 17u, 256u}) {
    std::vector<u64> sizes(n);
    for (auto& s : sizes) s = rng.next_u64() % 10000;
    std::vector<u64> want(n, 0);
    if (n) std::exclusive_scan(sizes.begin(), sizes.end(), want.begin(), u64{0});
    for (std::size_t wave : {1u, 2u, 8u, 64u})
      EXPECT_EQ(sim::lookback_exclusive_offsets(sizes, wave), want) << n << " " << wave;
  }
}

// --- chunk-level byte identity ----------------------------------------------

template <typename U>
void chunk_identity_case(std::vector<U> words) {
  std::vector<u8> cpu, gpu;
  bool c1 = pfpl::chunk_encode(words.data(), words.size(), cpu);
  bool c2 = sim::gpu_chunk_encode(words.data(), words.size(), gpu);
  EXPECT_EQ(c1, c2);
  ASSERT_EQ(cpu, gpu);
  // Cross decode: CPU decodes the GPU bytes, GPU decodes the CPU bytes.
  std::vector<U> back_cpu(words.size()), back_gpu(words.size());
  pfpl::chunk_decode(gpu.data(), gpu.size(), c2, back_cpu.data(), words.size());
  sim::gpu_chunk_decode(cpu.data(), cpu.size(), c1, back_gpu.data(), words.size());
  EXPECT_EQ(back_cpu, words);
  EXPECT_EQ(back_gpu, words);
}

TEST(SimChunk, ByteIdentitySmoothU32) {
  std::vector<u32> w(4096);
  data::Rng rng(45);
  u32 acc = 1000;
  for (auto& x : w) {
    acc += static_cast<u32>(rng.next_u64() % 7) - 3;
    x = acc;
  }
  chunk_identity_case(w);
}

TEST(SimChunk, ByteIdentityRandomU32) {
  std::vector<u32> w(4096);
  data::Rng rng(46);
  for (auto& x : w) x = static_cast<u32>(rng.next_u64());
  chunk_identity_case(w);  // incompressible: exercises the raw fallback
}

TEST(SimChunk, ByteIdentityU64) {
  std::vector<u64> w(2048);
  data::Rng rng(47);
  u64 acc = 0;
  for (auto& x : w) {
    acc += rng.next_u64() % 100;
    x = acc;
  }
  chunk_identity_case(w);
}

TEST(SimChunk, ByteIdentityPartialChunks) {
  data::Rng rng(48);
  for (std::size_t n : {1u, 5u, 31u, 32u, 33u, 100u, 4000u}) {
    std::vector<u32> w(n);
    u32 acc = 50;
    for (auto& x : w) {
      acc += static_cast<u32>(rng.next_u64() % 5);
      x = acc;
    }
    chunk_identity_case(w);
  }
}

// --- full-stream byte identity ----------------------------------------------

TEST(SimStream, CompressedStreamsIdenticalAcrossExecutors) {
  data::Rng rng(49);
  std::vector<float> v(100000);
  double acc = 0;
  for (auto& x : v) {
    acc += 0.01 * rng.gaussian();
    x = static_cast<float>(acc);
  }
  for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA}) {
    Bytes serial = pfpl::compress(Field(v.data(), v.size()), Params{1e-3, eb, Executor::Serial});
    Bytes omp = pfpl::compress(Field(v.data(), v.size()), Params{1e-3, eb, Executor::OpenMP});
    Bytes gpu = pfpl::compress(Field(v.data(), v.size()), Params{1e-3, eb, Executor::GpuSim});
    EXPECT_EQ(serial, omp) << to_string(eb);
    EXPECT_EQ(serial, gpu) << to_string(eb);
    // Decompressed bytes identical on every executor too.
    auto d_serial = pfpl::decompress(serial, Executor::Serial);
    auto d_omp = pfpl::decompress(serial, Executor::OpenMP);
    auto d_gpu = pfpl::decompress(serial, Executor::GpuSim);
    EXPECT_EQ(d_serial, d_omp);
    EXPECT_EQ(d_serial, d_gpu);
  }
}

TEST(SimStream, DoublePrecisionIdentity) {
  data::Rng rng(50);
  std::vector<double> v(30000);
  double acc = 0;
  for (auto& x : v) {
    acc += rng.gaussian();
    x = acc;
  }
  // All three bound types: the 64-bit warp path must match the CPU bytes.
  for (EbType eb : {EbType::ABS, EbType::REL, EbType::NOA}) {
    Bytes serial =
        pfpl::compress(Field(v.data(), v.size()), Params{1e-4, eb, Executor::Serial});
    Bytes gpu =
        pfpl::compress(Field(v.data(), v.size()), Params{1e-4, eb, Executor::GpuSim});
    EXPECT_EQ(serial, gpu) << to_string(eb);
    EXPECT_EQ(pfpl::decompress(serial, Executor::Serial),
              pfpl::decompress(serial, Executor::GpuSim))
        << to_string(eb);
  }
}
