#include "temporal/pfpv.hpp"

#include <bit>
#include <cstring>

#include "common/checksum.hpp"

namespace repro::temporal {
namespace {

template <typename T>
void put_le(u8* p, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) p[i] = static_cast<u8>(v >> (8 * i));
}

template <typename T>
T get_le(const u8* p) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) v |= static_cast<T>(p[i]) << (8 * i);
  return v;
}

void put_f64(u8* p, double v) {
  u64 bits;
  std::memcpy(&bits, &v, 8);
  put_le<u64>(p, bits);
}

double get_f64(const u8* p) {
  const u64 bits = get_le<u64>(p);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

/// CRC of a bitmap and a payload as one logical body, without concatenating.
u32 body_crc(const Bytes& bitmap, const Bytes& payload) {
  const u32 crc = common::crc32(bitmap.data(), bitmap.size());
  return common::crc32(payload.data(), payload.size(), crc);
}

}  // namespace

// Session header wire layout (40 bytes, docs/FORMAT.md §PFPV):
//   0 u32 magic  4 u16 version  6 u8 dtype  7 u8 eb_type  8 f64 eps
//  16 u32 dim_z 20 u32 dim_y   24 u32 dim_x
//  28 u32 keyframe_interval    32 u32 reserved  36 u32 crc32 of [0,36)
Bytes encode_stream_header(const SessionConfig& cfg) {
  Bytes out(kPfpvHeaderSize);
  u8* p = out.data();
  put_le<u32>(p + 0, kPfpvMagic);
  put_le<u16>(p + 4, kPfpvVersion);
  p[6] = static_cast<u8>(cfg.dtype);
  p[7] = static_cast<u8>(cfg.eb);
  put_f64(p + 8, cfg.eps);
  put_le<u32>(p + 16, cfg.dims[0]);
  put_le<u32>(p + 20, cfg.dims[1]);
  put_le<u32>(p + 24, cfg.dims[2]);
  put_le<u32>(p + 28, cfg.keyframe_interval);
  put_le<u32>(p + 32, 0);
  put_le<u32>(p + 36, common::crc32(p, 36));
  return out;
}

SessionConfig decode_stream_header(const u8* p, std::size_t n) {
  if (n < kPfpvHeaderSize) throw CompressionError("PFPV: truncated session header");
  if (get_le<u32>(p) != kPfpvMagic) throw CompressionError("PFPV: bad magic");
  const u16 version = get_le<u16>(p + 4);
  if (version != kPfpvVersion)
    throw CompressionError("PFPV: unsupported version " + std::to_string(version));
  if (get_le<u32>(p + 36) != common::crc32(p, 36))
    throw CompressionError("PFPV: session header CRC mismatch");
  SessionConfig cfg;
  if (p[6] > 1) throw CompressionError("PFPV: bad dtype");
  if (p[7] > 2) throw CompressionError("PFPV: bad eb_type");
  cfg.dtype = static_cast<DType>(p[6]);
  cfg.eb = static_cast<EbType>(p[7]);
  cfg.eps = get_f64(p + 8);
  cfg.dims = {get_le<u32>(p + 16), get_le<u32>(p + 20), get_le<u32>(p + 24)};
  cfg.keyframe_interval = get_le<u32>(p + 28);
  if (cfg.frame_values() == 0) throw CompressionError("PFPV: zero-value frame shape");
  return cfg;
}

// Frame record wire layout (40-byte header + bitmap + PFPL payload):
//   0 u32 magic       4 u32 header_crc of [8,40)   8 u64 frame_index
//  16 u8 frame_type  17 u8[3] reserved            20 f64 abs_bound
//  28 u32 bitmap_len 32 u32 payload_len           36 u32 body_crc of
//                                                        bitmap||payload
Bytes encode_frame_record(const EncodedFrame& f) {
  Bytes out(kPfpvRecordHeaderSize + f.chunk_modes.size() + f.payload.size());
  u8* p = out.data();
  put_le<u32>(p + 0, kPfpvRecordMagic);
  put_le<u64>(p + 8, f.frame_index);
  p[16] = static_cast<u8>(f.type);
  p[17] = p[18] = p[19] = 0;
  put_f64(p + 20, f.abs_bound);
  put_le<u32>(p + 28, static_cast<u32>(f.chunk_modes.size()));
  put_le<u32>(p + 32, static_cast<u32>(f.payload.size()));
  put_le<u32>(p + 36, body_crc(f.chunk_modes, f.payload));
  put_le<u32>(p + 4, common::crc32(p + 8, kPfpvRecordHeaderSize - 8));
  std::memcpy(p + kPfpvRecordHeaderSize, f.chunk_modes.data(), f.chunk_modes.size());
  std::memcpy(p + kPfpvRecordHeaderSize + f.chunk_modes.size(), f.payload.data(),
              f.payload.size());
  return out;
}

std::size_t decode_frame_record(const u8* p, std::size_t n, EncodedFrame& out) {
  if (n < kPfpvRecordHeaderSize) return 0;
  if (get_le<u32>(p) != kPfpvRecordMagic) return 0;
  if (get_le<u32>(p + 4) != common::crc32(p + 8, kPfpvRecordHeaderSize - 8)) return 0;
  if (p[16] > 1) return 0;
  const std::size_t bitmap_len = get_le<u32>(p + 28);
  const std::size_t payload_len = get_le<u32>(p + 32);
  const std::size_t total = kPfpvRecordHeaderSize + bitmap_len + payload_len;
  if (n < total) return 0;
  Bytes bitmap(p + kPfpvRecordHeaderSize, p + kPfpvRecordHeaderSize + bitmap_len);
  Bytes payload(p + kPfpvRecordHeaderSize + bitmap_len, p + total);
  if (get_le<u32>(p + 36) != body_crc(bitmap, payload)) return 0;
  out.frame_index = get_le<u64>(p + 8);
  out.type = static_cast<FrameType>(p[16]);
  out.abs_bound = get_f64(p + 20);
  out.chunk_modes = std::move(bitmap);
  out.payload = std::move(payload);
  // Rebuild the chunk-mode tallies from the bitmap + the payload's own PFPL
  // header, so readers (stats, `pfpl stream info`) see the same numbers the
  // encoder reported.
  out.predicted_chunks = out.intra_chunks = 0;
  for (u8 b : out.chunk_modes)
    out.predicted_chunks += static_cast<std::size_t>(std::popcount(b));
  try {
    const std::size_t chunks = pfpl::peek_header(out.payload).chunk_count;
    out.intra_chunks = chunks > out.predicted_chunks ? chunks - out.predicted_chunks : 0;
  } catch (const CompressionError&) {
    // Valid record framing around an unparsable payload: leave the tallies
    // best-effort and let the decoder produce the real error.
  }
  return total;
}

StreamWriter::StreamWriter(const std::string& path, const SessionConfig& cfg)
    : path_(path) {
  f_ = std::fopen(path.c_str(), "wb");
  if (!f_) throw CompressionError("PFPV: cannot create " + path);
  const Bytes header = encode_stream_header(cfg);
  write_bytes(header.data(), header.size());
}

StreamWriter::~StreamWriter() {
  if (f_) std::fclose(f_);  // unfinished: leaves a valid truncated stream
}

void StreamWriter::write_bytes(const void* p, std::size_t n) {
  if (!f_) throw CompressionError("PFPV: writer already finished");
  if (std::fwrite(p, 1, n, f_) != n)
    throw CompressionError("PFPV: short write to " + path_);
  // Flush per record: a killed process loses at most the torn tail.
  std::fflush(f_);
  offset_ += n;
}

void StreamWriter::append(const EncodedFrame& f) { append_encoded(encode_frame_record(f)); }

void StreamWriter::append_encoded(const Bytes& record) {
  EncodedFrame f;
  if (decode_frame_record(record.data(), record.size(), f) != record.size())
    throw CompressionError("PFPV: refusing to append a malformed frame record");
  if (f.type == FrameType::Intra) keyframes_.push_back({f.frame_index, offset_});
  write_bytes(record.data(), record.size());
  ++frames_;
}

// Trailer: an index section at index_offset —
//   u32 magic  u32 entry_count  {u64 frame_index, u64 file_offset} per entry
// — followed by a fixed 24-byte footer parsed from EOF:
//   u64 index_offset  u64 frame_count  u32 index_crc  u32 magic
void StreamWriter::finish() {
  if (finished_) return;
  const u64 index_offset = offset_;
  Bytes index(8 + keyframes_.size() * 16);
  put_le<u32>(index.data(), kPfpvIndexMagic);
  put_le<u32>(index.data() + 4, static_cast<u32>(keyframes_.size()));
  for (std::size_t i = 0; i < keyframes_.size(); ++i) {
    put_le<u64>(index.data() + 8 + i * 16, keyframes_[i].frame_index);
    put_le<u64>(index.data() + 16 + i * 16, keyframes_[i].file_offset);
  }
  Bytes footer(kPfpvFooterSize);
  put_le<u64>(footer.data(), index_offset);
  put_le<u64>(footer.data() + 8, frames_);
  put_le<u32>(footer.data() + 16, common::crc32(index.data(), index.size()));
  put_le<u32>(footer.data() + 20, kPfpvIndexMagic);
  write_bytes(index.data(), index.size());
  write_bytes(footer.data(), footer.size());
  std::fclose(f_);
  f_ = nullptr;
  finished_ = true;
}

StreamReader::StreamReader(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw CompressionError("PFPV: cannot open " + path);
  Bytes bytes;
  u8 buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  open(std::move(bytes));
}

StreamReader::StreamReader(Bytes bytes) { open(std::move(bytes)); }

void StreamReader::open(Bytes bytes) {
  data_ = std::move(bytes);
  cfg_ = decode_stream_header(data_.data(), data_.size());

  // Find the record region's end: trust a valid trailer, else assume the
  // whole tail is records (truncated stream).
  std::size_t records_end = data_.size();
  bool trailer_ok = false;
  u64 trailer_frames = 0;
  std::vector<KeyframeEntry> trailer_keyframes;
  if (data_.size() >= kPfpvHeaderSize + 8 + kPfpvFooterSize) {
    const u8* foot = data_.data() + data_.size() - kPfpvFooterSize;
    if (get_le<u32>(foot + 20) == kPfpvIndexMagic) {
      const u64 index_offset = get_le<u64>(foot);
      const u64 index_end = data_.size() - kPfpvFooterSize;
      if (index_offset >= kPfpvHeaderSize && index_offset + 8 <= index_end) {
        const u8* idx = data_.data() + index_offset;
        const std::size_t index_size = static_cast<std::size_t>(index_end - index_offset);
        const u32 entries = get_le<u32>(idx + 4);
        if (get_le<u32>(idx) == kPfpvIndexMagic &&
            index_size == 8 + static_cast<std::size_t>(entries) * 16 &&
            get_le<u32>(foot + 16) == common::crc32(idx, index_size)) {
          trailer_ok = true;
          trailer_frames = get_le<u64>(foot + 8);
          records_end = static_cast<std::size_t>(index_offset);
          trailer_keyframes.reserve(entries);
          for (u32 i = 0; i < entries; ++i)
            trailer_keyframes.push_back({get_le<u64>(idx + 8 + i * 16),
                                         get_le<u64>(idx + 16 + i * 16)});
        }
      }
    }
  }

  // Walk the records; stop at the first invalid/incomplete one.
  std::size_t pos = kPfpvHeaderSize;
  EncodedFrame f;
  while (pos < records_end) {
    const std::size_t sz = decode_frame_record(data_.data() + pos, records_end - pos, f);
    if (sz == 0) break;
    offsets_.push_back(pos);
    if (f.type == FrameType::Intra) keyframes_.push_back({f.frame_index, pos});
    pos += sz;
  }

  if (trailer_ok && pos == records_end && offsets_.size() == trailer_frames) {
    keyframes_ = std::move(trailer_keyframes);
  } else {
    // Missing/invalid trailer, or records that do not match it: keep the
    // valid prefix and report the discarded tail.
    truncated_ = true;
    truncated_bytes_ = data_.size() - pos;
  }
}

EncodedFrame StreamReader::frame(std::size_t i) const {
  if (i >= offsets_.size())
    throw CompressionError("PFPV: frame index out of range");
  EncodedFrame f;
  const std::size_t pos = offsets_[i];
  if (decode_frame_record(data_.data() + pos, data_.size() - pos, f) == 0)
    throw CompressionError("PFPV: frame record unreadable");  // unreachable
  return f;
}

}  // namespace repro::temporal
