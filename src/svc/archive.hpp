// PFPA — the PFPL Archive container (multi-field datasets).
//
// One archive holds many independently compressed PFPL streams ("entries"),
// e.g. every field of a simulation checkpoint. Entries are concatenated and
// located through an index written at the END of the file (zip-style), so
//   * the writer streams entries out as they are produced, no seeking;
//   * any entry is randomly accessible — the reader loads footer + index
//     (a few KB) and then reads exactly [offset, offset+size) of the one
//     entry it wants, never touching the rest;
//   * every entry and the index itself carry a CRC-32, so truncation and
//     corruption are detected before any payload is interpreted.
//
// Layout (little-endian; full spec in docs/FORMAT.md):
//   file header   8 B   magic "PFPA", version, reserved
//   entries       ...   complete PFPL streams, concatenated
//   index         ...   one variable-length record per entry
//   footer       28 B   index_offset, index_size, entry_count, index_crc32,
//                       magic (again, as an end-of-file sentinel)
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/format.hpp"

namespace repro::svc {

inline constexpr u32 kArchiveMagic = 0x41504650u;  // "PFPA"
inline constexpr u16 kArchiveVersion = 1;
inline constexpr std::size_t kArchiveHeaderSize = 8;
inline constexpr std::size_t kArchiveFooterSize = 28;

/// One index record (parsed form).
struct ArchiveEntry {
  std::string name;
  DType dtype = DType::F32;
  EbType eb_type = EbType::ABS;
  double eps = 0.0;
  u64 offset = 0;       ///< entry's PFPL stream, from file start
  u64 size = 0;         ///< stream bytes
  u64 value_count = 0;  ///< scalars in the original field
  u64 raw_size = 0;     ///< original field bytes
  u32 crc32 = 0;        ///< CRC-32 of the stream bytes
};

/// Streaming archive writer. Entries are appended in add() order; finish()
/// writes the index and footer. The file is invalid until finish() returns.
class ArchiveWriter {
 public:
  /// Creates/truncates `path`. Throws CompressionError (with errno text) on
  /// failure.
  explicit ArchiveWriter(const std::string& path);
  ~ArchiveWriter();  // closes the file; unfinished archives stay invalid

  ArchiveWriter(const ArchiveWriter&) = delete;
  ArchiveWriter& operator=(const ArchiveWriter&) = delete;

  /// Append one compressed stream under `name`. `header` supplies the
  /// entry's dtype/eb/eps/value_count; `raw_size` the original field bytes.
  /// Names must be unique, non-empty, and free of path separators.
  void add(const std::string& name, const pfpl::Header& header, const Bytes& stream,
           u64 raw_size);

  /// Write index + footer and close. Must be called exactly once.
  void finish();

  std::size_t entry_count() const { return entries_.size(); }

 private:
  void write_raw(const void* data, std::size_t n);

  std::string path_;
  std::FILE* f_ = nullptr;
  u64 offset_ = 0;
  bool finished_ = false;
  std::vector<ArchiveEntry> entries_;
};

/// Random-access archive reader. The constructor loads ONLY the footer and
/// index; entry payloads are read on demand.
class ArchiveReader {
 public:
  /// Throws CompressionError on a missing file, bad magic, truncated or
  /// corrupted index (index CRC mismatch, out-of-bounds records, or unsafe
  /// entry names — empty, '.', '..', or containing a path separator — so
  /// untrusted archives cannot direct unpack outside its output directory).
  explicit ArchiveReader(const std::string& path);

  const std::vector<ArchiveEntry>& entries() const { return entries_; }

  /// Entry lookup by name; throws CompressionError when absent.
  const ArchiveEntry& find(const std::string& name) const;

  /// Read one entry's PFPL stream (exactly [offset, offset+size) of the
  /// file) and verify its CRC-32. Throws CompressionError on mismatch.
  Bytes read_entry(const ArchiveEntry& e) const;
  Bytes read_entry(const std::string& name) const { return read_entry(find(name)); }

 private:
  std::string path_;
  std::vector<ArchiveEntry> entries_;
};

}  // namespace repro::svc
