#include "baselines/registry.hpp"

#include "baselines/cuszp_like.hpp"
#include "baselines/fzgpu_like.hpp"
#include "baselines/mgard_like.hpp"
#include "baselines/sperr_like.hpp"
#include "baselines/sz2.hpp"
#include "baselines/sz3.hpp"
#include "baselines/zfp_like.hpp"
#include "core/pfpl.hpp"

namespace repro::baselines {

std::vector<CompressorPtr> baseline_compressors() {
  return {
      std::make_shared<ZfpLikeCompressor>(),
      std::make_shared<Sz2Compressor>(),
      std::make_shared<Sz3Compressor>(false),
      std::make_shared<Sz3Compressor>(true),
      std::make_shared<MgardLikeCompressor>(),
      std::make_shared<SperrLikeCompressor>(),
      std::make_shared<FzGpuLikeCompressor>(),
      std::make_shared<CuszpLikeCompressor>(),
  };
}

std::vector<CompressorPtr> all_compressors() {
  std::vector<CompressorPtr> v = baseline_compressors();
  v.push_back(std::make_shared<pfpl::PfplCompressor>(pfpl::Executor::Serial));
  v.push_back(std::make_shared<pfpl::PfplCompressor>(pfpl::Executor::OpenMP));
  v.push_back(std::make_shared<pfpl::PfplCompressor>(pfpl::Executor::GpuSim));
  return v;
}

CompressorPtr find_compressor(const std::string& name) {
  for (auto& c : all_compressors())
    if (c->name() == name) return c;
  throw CompressionError("unknown compressor: " + name);
}

}  // namespace repro::baselines
