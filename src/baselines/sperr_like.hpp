// SPERR-like baseline (Li, Lindstrom, Clyne, IPDPS 2023; paper Section VI):
// multi-level wavelet transform, uniform coefficient quantization, an
// outlier-correction pass for values that miss the bound, Huffman + LZ.
//
// Table III profile: ABS only and not guaranteed ('○' — the paper observes
// "minor (< 1.5x) violations for the 1E-2 error bound"); float+double; CPU
// only; and 3D-only in practice (the paper compares against SPERR-3D and
// excludes the non-3D suites).
#pragma once

#include "common/compressor.hpp"

namespace repro::baselines {

class SperrLikeCompressor final : public Compressor {
 public:
  std::string name() const override { return "SPERR_Serial"; }
  Features features() const override {
    Features f;
    f.abs = true;
    f.f32 = f.f64 = true;
    f.cpu = true;
    f.guarantee_abs = false;  // Table III '○' (minor violations)
    f.requires_3d = true;
    return f;
  }
  Bytes compress(const Field& in, double eps, EbType eb) const override;
  std::vector<u8> decompress(const Bytes& stream) const override;
};

}  // namespace repro::baselines
