// Failure-injection tests: corrupted, truncated, and bit-flipped compressed
// streams must produce a clean CompressionError (or, where corruption lands
// in value payloads, decode to *something*) — never crash, hang, or read out
// of bounds. Every container format in the repository is fuzzed.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/registry.hpp"
#include "core/pfpl.hpp"
#include "data/rng.hpp"
#include "lossless/huffman.hpp"
#include "lossless/lz.hpp"

using namespace repro;

namespace {

std::vector<float> field_3d(std::size_t n, u64 seed) {
  data::Rng rng(seed);
  std::vector<float> v(n);
  double acc = 0;
  for (auto& x : v) {
    acc += 0.01 * rng.gaussian();
    x = static_cast<float>(acc);
  }
  return v;
}

/// Decode must either succeed or throw CompressionError; anything else
/// (crash, other exception type) fails the test.
template <typename Fn>
void expect_graceful(Fn&& decode) {
  try {
    decode();
  } catch (const CompressionError&) {
    // fine
  }
}

}  // namespace

TEST(Fuzz, PfplTruncationsAllLengths) {
  auto v = field_3d(20000, 1);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  data::Rng rng(2);
  for (int t = 0; t < 200; ++t) {
    std::size_t len = rng.next_u64() % c.size();
    Bytes cut(c.begin(), c.begin() + len);
    expect_graceful([&] { pfpl::decompress(cut); });
  }
}

TEST(Fuzz, PfplRandomByteFlips) {
  auto v = field_3d(20000, 3);
  for (EbType eb : {EbType::ABS, EbType::REL}) {
    Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, eb});
    data::Rng rng(4);
    for (int t = 0; t < 300; ++t) {
      Bytes bad = c;
      int flips = 1 + static_cast<int>(rng.next_u64() % 8);
      for (int f = 0; f < flips; ++f)
        bad[rng.next_u64() % bad.size()] ^= static_cast<u8>(1u << (rng.next_u64() % 8));
      expect_graceful([&] { pfpl::decompress(bad); });
    }
  }
}

TEST(Fuzz, PfplHeaderFieldCorruption) {
  auto v = field_3d(5000, 5);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  // Exhaustively flip each byte of the header and the chunk table.
  std::size_t scan = std::min<std::size_t>(c.size(), 256);
  for (std::size_t i = 0; i < scan; ++i) {
    for (u8 bit = 0; bit < 8; ++bit) {
      Bytes bad = c;
      bad[i] ^= static_cast<u8>(1u << bit);
      expect_graceful([&] { pfpl::decompress(bad); });
    }
  }
}

TEST(Fuzz, PfplRandomGarbageInput) {
  data::Rng rng(6);
  for (int t = 0; t < 200; ++t) {
    Bytes junk(rng.next_u64() % 4096);
    for (auto& b : junk) b = static_cast<u8>(rng.next_u64());
    expect_graceful([&] { pfpl::decompress(junk); });
  }
}

TEST(Fuzz, PfplGpuSimDecoderEquallyRobust) {
  auto v = field_3d(20000, 7);
  Bytes c = pfpl::compress(Field(v.data(), v.size()), {1e-3, EbType::ABS});
  data::Rng rng(8);
  for (int t = 0; t < 100; ++t) {
    Bytes bad = c;
    bad[rng.next_u64() % bad.size()] ^= 0xFF;
    expect_graceful([&] { pfpl::decompress(bad, pfpl::Executor::GpuSim); });
  }
}

TEST(Fuzz, HuffmanStreams) {
  std::vector<u16> syms(5000);
  data::Rng rng(9);
  for (auto& s : syms) s = static_cast<u16>(rng.next_u64() % 300);
  Bytes enc = lossless::huffman_encode(syms);
  for (int t = 0; t < 300; ++t) {
    Bytes bad = enc;
    bad[rng.next_u64() % bad.size()] ^= static_cast<u8>(rng.next_u64());
    expect_graceful([&] { lossless::huffman_decode(bad); });
  }
  for (std::size_t len = 0; len < std::min<std::size_t>(enc.size(), 64); ++len) {
    Bytes cut(enc.begin(), enc.begin() + len);
    expect_graceful([&] { lossless::huffman_decode(cut); });
  }
}

TEST(Fuzz, LzStreams) {
  std::vector<u8> data(5000);
  data::Rng rng(10);
  for (auto& b : data) b = static_cast<u8>(rng.next_u64() % 5);
  Bytes enc = lossless::lz_encode(data);
  for (int t = 0; t < 300; ++t) {
    Bytes bad = enc;
    bad[rng.next_u64() % bad.size()] ^= static_cast<u8>(rng.next_u64());
    expect_graceful([&] { lossless::lz_decode(bad); });
  }
}

TEST(Fuzz, AllBaselineDecodersSurviveCorruption) {
  auto v = field_3d(16 * 16 * 16, 11);
  Field field(v.data(), {16, 16, 16});
  data::Rng rng(12);
  for (const auto& comp : baselines::all_compressors()) {
    Features f = comp->features();
    EbType eb = f.abs ? EbType::ABS : (f.noa ? EbType::NOA : EbType::REL);
    if (!f.f32) continue;
    Bytes c;
    try {
      c = comp->compress(field, 1e-3, eb);
    } catch (const CompressionError&) {
      continue;  // shape-restricted compressor
    }
    for (int t = 0; t < 100; ++t) {
      Bytes bad = c;
      bad[rng.next_u64() % bad.size()] ^= static_cast<u8>(1u << (rng.next_u64() % 8));
      expect_graceful([&] { comp->decompress(bad); });
      std::size_t len = rng.next_u64() % c.size();
      Bytes cut(c.begin(), c.begin() + len);
      expect_graceful([&] { comp->decompress(cut); });
    }
  }
}

TEST(Fuzz, WrongMagicCrossDecoding) {
  // Feeding one compressor's stream to another must throw, not misparse.
  auto v = field_3d(16 * 16 * 16, 13);
  Field field(v.data(), {16, 16, 16});
  auto all = baselines::all_compressors();
  Bytes pfpl_stream = baselines::find_compressor("PFPL_Serial")->compress(field, 1e-3,
                                                                          EbType::ABS);
  for (const auto& comp : all) {
    if (comp->name().rfind("PFPL", 0) == 0) continue;
    expect_graceful([&] { comp->decompress(pfpl_stream); });
  }
}
