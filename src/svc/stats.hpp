// Service metrics for the batch-compression service.
//
// One SvcStats is filled per BatchCompressor::run() and printed as a single
// summary line by the CLI — the shape a scrape-and-alert pipeline wants:
// counts, bytes, scheduler health (queue depth, steals), and per-stage wall
// time so a regression in planning vs. encoding vs. assembly is attributable
// at a glance.
#pragma once

#include <cstdio>
#include <string>

#include "common/types.hpp"

namespace repro::svc {

struct SvcStats {
  u64 jobs = 0;            ///< jobs submitted to run()
  u64 jobs_failed = 0;     ///< jobs that ended with an error
  u64 chunks = 0;          ///< chunk tasks executed
  u64 bytes_in = 0;        ///< raw scalar bytes across all jobs
  u64 bytes_out = 0;       ///< compressed stream bytes across all jobs
  u64 tasks_stolen = 0;    ///< pool tasks taken by work stealing
  u64 peak_queue_depth = 0;
  unsigned threads = 0;
  double plan_ms = 0;      ///< header planning (incl. NOA range reduction)
  double encode_ms = 0;    ///< submit-to-last-chunk wall time
  double assemble_ms = 0;  ///< stream assembly + checksums
  double wall_ms = 0;      ///< total run() wall time

  double ratio() const {
    return bytes_out ? static_cast<double>(bytes_in) / static_cast<double>(bytes_out) : 0.0;
  }
  /// Aggregate compression throughput in GB/s (input bytes over total wall).
  double gbps() const {
    return wall_ms > 0 ? static_cast<double>(bytes_in) / 1e6 / wall_ms : 0.0;
  }

  /// One-line summary, e.g.
  /// svc: jobs=8 chunks=1024 in=64.0MB out=12.3MB ratio=5.2 1.8GB/s
  ///      threads=4 stolen=37 depth=512 plan/encode/assemble=0.2/30.1/4.0ms
  std::string summary() const {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "svc: jobs=%llu%s chunks=%llu in=%.1fMB out=%.1fMB ratio=%.2f "
                  "%.2fGB/s threads=%u stolen=%llu depth=%llu "
                  "plan/encode/assemble=%.1f/%.1f/%.1fms",
                  static_cast<unsigned long long>(jobs),
                  jobs_failed ? (" failed=" + std::to_string(jobs_failed)).c_str() : "",
                  static_cast<unsigned long long>(chunks), bytes_in / 1e6, bytes_out / 1e6,
                  ratio(), gbps(), threads, static_cast<unsigned long long>(tasks_stolen),
                  static_cast<unsigned long long>(peak_queue_depth), plan_ms, encode_ms,
                  assemble_ms);
    return buf;
  }
};

}  // namespace repro::svc
