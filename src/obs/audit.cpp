#include "obs/audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>

#include "core/chunked.hpp"
#include "data/synthetic.hpp"
#include "metrics/error_stats.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace repro::obs {
namespace {

// Verification precision convention shared with src/metrics and the PFPL
// quantizers: double for float data, long double for double data.
template <typename T>
using VerifyReal = std::conditional_t<std::is_same_v<T, float>, double, long double>;

Counter& audit_counter(const char* name) { return MetricsRegistry::global().counter(name); }

/// Per-chunk bound utilization in permille of the allowed error: 1000 = the
/// chunk's worst value sits exactly on the bound, >1000 = violation. The
/// histogram is how CI sees quantizer headroom erode before it breaks.
Histogram& chunk_utilization_hist() {
  return MetricsRegistry::global().histogram(
      "audit.chunk_bound_permille",
      {50, 100, 200, 400, 600, 800, 900, 950, 1000});
}

Histogram& ratio_hist() {
  return MetricsRegistry::global().histogram(
      "audit.ratio_x100", {100, 200, 400, 800, 1600, 3200, 6400, 12800});
}

Histogram& psnr_hist() {
  return MetricsRegistry::global().histogram(
      "audit.psnr_db", {20, 40, 60, 80, 100, 120, 150, 200, 400, 999});
}

template <typename T>
double finite_range_of(std::span<const T> v) {
  bool any = false;
  double mn = 0, mx = 0;
  for (T x : v) {
    if (!std::isfinite(x)) continue;
    const double d = static_cast<double>(x);
    if (!any) {
      mn = mx = d;
      any = true;
    } else {
      mn = std::min(mn, d);
      mx = std::max(mx, d);
    }
  }
  return any ? mx - mn : 0.0;
}

/// Check one value pair. Returns the measured error in the bound's unit
/// (absolute for ABS/NOA, relative deviation for REL; +inf for structural
/// mismatches such as NaN<->number) and sets `violated`.
template <typename T>
double check_value(T o, T r, EbType eb, double eps, VerifyReal<T> abs_bound,
                   bool& violated) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (std::isnan(o)) {
    violated = !std::isnan(r);
    return violated ? kInf : 0.0;
  }
  if (std::isinf(o)) {
    violated = r != o;
    return violated ? kInf : 0.0;
  }
  if (eb == EbType::ABS || eb == EbType::NOA) {
    if (!std::isfinite(r)) {
      violated = true;
      return kInf;
    }
    VerifyReal<T> d = static_cast<VerifyReal<T>>(o) - static_cast<VerifyReal<T>>(r);
    if (d < 0) d = -d;
    violated = !(d <= abs_bound);
    return static_cast<double>(d);
  }
  // REL: same sign and ao/(1+eps) <= ar <= ao*(1+eps); zero maps to zero.
  if (o == T(0)) {
    violated = r != T(0);
    return violated ? kInf : 0.0;
  }
  const bool same_sign = (o > T(0)) == (r > T(0)) && r != T(0);
  if (!same_sign || !std::isfinite(r)) {
    violated = true;
    return kInf;
  }
  const VerifyReal<T> one_plus = VerifyReal<T>(1) + static_cast<VerifyReal<T>>(eps);
  const VerifyReal<T> ao = static_cast<VerifyReal<T>>(o < T(0) ? -o : o);
  const VerifyReal<T> ar = static_cast<VerifyReal<T>>(r < T(0) ? -r : r);
  violated = !(ar * one_plus >= ao && ar <= ao * one_plus);
  const VerifyReal<T> dev = (ao > ar ? ao / ar : ar / ao) - VerifyReal<T>(1);
  return static_cast<double>(dev);
}

template <typename T>
void verify_span(std::span<const T> orig, std::span<const T> recon, EbType eb, double eps,
                 AuditCase& c) {
  const std::size_t per_chunk = pfpl::chunk_values(c.dtype);
  c.values = orig.size();
  c.chunks = (orig.size() + per_chunk - 1) / per_chunk;

  VerifyReal<T> abs_bound = static_cast<VerifyReal<T>>(eps);
  if (eb == EbType::NOA)
    abs_bound = static_cast<VerifyReal<T>>(eps) * static_cast<VerifyReal<T>>(finite_range_of(orig));
  c.allowed = eb == EbType::REL ? eps : static_cast<double>(abs_bound);

  Histogram& chunk_hist = chunk_utilization_hist();
  for (std::size_t chunk = 0; chunk < c.chunks; ++chunk) {
    const std::size_t begin = chunk * per_chunk;
    const std::size_t end = std::min(begin + per_chunk, orig.size());
    double chunk_max = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const T o = orig[i];
      const T r = i < recon.size() ? recon[i] : T(0);
      bool violated = false;
      const double err = check_value(o, r, eb, eps, abs_bound, violated);
      chunk_max = std::max(chunk_max, err);
      if (violated) {
        ++c.violations;
        if (!c.has_first) {
          c.has_first = true;
          c.first.suite = c.suite;
          c.first.file = c.file;
          c.first.seed = c.seed;
          c.first.chunk = chunk;
          c.first.index = i;
          c.first.original = static_cast<double>(o);
          c.first.reconstructed = static_cast<double>(r);
          c.first.error = err;
          c.first.allowed = c.allowed;
        }
      }
    }
    c.max_err = std::max(c.max_err, chunk_max);
    // Bound utilization in permille (clamped: structural mismatches report
    // +inf error).
    const double denom = c.allowed > 0 ? c.allowed : 1.0;
    const double permille = std::isfinite(chunk_max) ? chunk_max / denom * 1000.0 : 2000.0;
    chunk_hist.record(static_cast<u64>(std::min(permille, 2000.0)));
  }

  const auto st = metrics::compute_stats(orig, recon);
  c.psnr_db = st.psnr;
  psnr_hist().record(static_cast<u64>(std::max(0.0, std::min(c.psnr_db, 999.0))));

  audit_counter("audit.cases").add(1);
  audit_counter("audit.chunks").add(c.chunks);
  audit_counter("audit.values").add(c.values);
  audit_counter("audit.violations").add(c.violations);
}

}  // namespace

AuditCase ErrorBoundAuditor::verify_field(const Field& orig, const std::vector<u8>& recon_raw,
                                          EbType eb, double eps, const std::string& suite,
                                          const std::string& file, u64 seed,
                                          std::size_t compressed_bytes) {
  AuditCase c;
  c.suite = suite;
  c.file = file;
  c.dtype = orig.dtype;
  c.eb = eb;
  c.eps = eps;
  c.seed = seed;
  c.ratio = metrics::compression_ratio(orig.byte_size(), compressed_bytes);
  if (compressed_bytes) ratio_hist().record(static_cast<u64>(c.ratio * 100.0));

  if (orig.dtype == DType::F32) {
    std::span<const float> recon(reinterpret_cast<const float*>(recon_raw.data()),
                                 recon_raw.size() / sizeof(float));
    verify_span(orig.as<float>(), recon, eb, eps, c);
  } else {
    std::span<const double> recon(reinterpret_cast<const double*>(recon_raw.data()),
                                  recon_raw.size() / sizeof(double));
    verify_span(orig.as<double>(), recon, eb, eps, c);
  }
  return c;
}

AuditResult ErrorBoundAuditor::run() const {
  AuditResult res;
  for (const auto& spec : data::paper_suites()) {
    if (!cfg_.suites.empty() &&
        std::find(cfg_.suites.begin(), cfg_.suites.end(), spec.name) == cfg_.suites.end())
      continue;
    if (std::find(cfg_.dtypes.begin(), cfg_.dtypes.end(), spec.dtype) == cfg_.dtypes.end())
      continue;
    const data::Suite suite =
        data::generate(spec, cfg_.target_values, cfg_.max_files, cfg_.seed);
    for (const auto& file : suite.files) {
      const Field field = file.field();
      for (EbType eb : cfg_.ebs) {
        for (double eps : cfg_.bounds) {
          Bytes stream = pfpl::compress(field, pfpl::Params{eps, eb, cfg_.exec});
          std::vector<u8> raw = pfpl::decompress(stream, cfg_.exec);
          AuditCase about;
          about.suite = spec.name;
          about.file = file.name;
          about.dtype = spec.dtype;
          about.eb = eb;
          about.eps = eps;
          about.seed = cfg_.seed;
          if (corrupt_) corrupt_(raw, about);
          AuditCase c = verify_field(field, raw, eb, eps, spec.name, file.name, cfg_.seed,
                                     stream.size());
          res.total_values += c.values;
          res.total_violations += c.violations;
          res.cases.push_back(std::move(c));
        }
      }
    }
  }
  return res;
}

std::string AuditResult::text() const {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-18s %-14s %-5s %-4s %-8s %10s %10s %12s %8s %8s\n",
                "suite", "file", "dtype", "eb", "eps", "values", "viol", "max_err", "ratio",
                "psnr");
  out += line;
  for (const AuditCase& c : cases) {
    std::snprintf(line, sizeof(line),
                  "%-18s %-14s %-5s %-4s %-8g %10zu %10llu %12.4g %8.2f %8.2f\n",
                  c.suite.c_str(), c.file.c_str(), to_string(c.dtype), to_string(c.eb),
                  c.eps, c.values, static_cast<unsigned long long>(c.violations), c.max_err,
                  c.ratio, c.psnr_db);
    out += line;
    if (c.has_first) {
      std::snprintf(line, sizeof(line),
                    "  FIRST VIOLATION: suite=%s file=%s seed=0x%llx chunk=%zu index=%zu "
                    "orig=%.17g recon=%.17g err=%.6g allowed=%.6g\n",
                    c.first.suite.c_str(), c.first.file.c_str(),
                    static_cast<unsigned long long>(c.first.seed), c.first.chunk,
                    c.first.index, c.first.original, c.first.reconstructed, c.first.error,
                    c.first.allowed);
      out += line;
    }
  }
  std::snprintf(line, sizeof(line), "audit: %zu cases, %zu values, %llu violations -> %s\n",
                cases.size(), total_values,
                static_cast<unsigned long long>(total_violations),
                ok() ? "OK (bound holds everywhere)" : "BOUND VIOLATED");
  out += line;
  return out;
}

std::string AuditResult::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("cases").begin_array();
  for (const AuditCase& c : cases) {
    w.begin_object();
    w.kv("suite", c.suite);
    w.kv("file", c.file);
    w.kv("dtype", to_string(c.dtype));
    w.kv("eb", to_string(c.eb));
    w.kv("eps", c.eps);
    w.kv("seed", static_cast<unsigned long long>(c.seed));
    w.kv("values", static_cast<unsigned long long>(c.values));
    w.kv("chunks", static_cast<unsigned long long>(c.chunks));
    w.kv("violations", static_cast<unsigned long long>(c.violations));
    // max_err can be +inf on structural mismatches; JSON has no inf, so cap
    // to a sentinel that still reads as "way past the bound".
    w.kv("max_err", std::isfinite(c.max_err) ? c.max_err : 1e308);
    w.kv("allowed", c.allowed);
    w.kv("ratio", c.ratio);
    w.kv("psnr_db", c.psnr_db);
    if (c.has_first) {
      w.key("first_violation").begin_object();
      w.kv("suite", c.first.suite);
      w.kv("file", c.first.file);
      w.kv("seed", static_cast<unsigned long long>(c.first.seed));
      w.kv("chunk", static_cast<unsigned long long>(c.first.chunk));
      w.kv("index", static_cast<unsigned long long>(c.first.index));
      w.kv("original", c.first.original);
      w.kv("reconstructed", c.first.reconstructed);
      w.kv("error", std::isfinite(c.first.error) ? c.first.error : 1e308);
      w.kv("allowed", c.first.allowed);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.kv("total_values", static_cast<unsigned long long>(total_values));
  w.kv("total_violations", static_cast<unsigned long long>(total_violations));
  w.kv("ok", ok());
  w.end_object();
  return w.take();
}

}  // namespace repro::obs
